// Package bitset is the repository's shared word-parallel set engine: a
// fixed-capacity bitset over small dense index universes, with the
// operations the two hot consumers need.
//
//   - The SPARE baseline's apriori enumerator uses bits over timestamp
//     indices: intersection of co-clustering sequences and
//     longest-consecutive-run pruning (a group of objects can only form a
//     convoy of length ≥ k if the AND of its pairwise co-clustering
//     sequences has a run of ≥ k set bits).
//   - The mining hot path (k/2-hop candidate intersection, the extension
//     walks, the CMC/PCCD sweep) uses bits over interned object indices
//     (model.Interner): intersect-into reusable buffers, popcount sizes
//     with early exit at the m threshold, and word-parallel subset tests
//     replace the sorted-slice ObjSet merges that used to dominate the
//     profile.
//
// All binary operations require both operands to share a capacity; buffers
// are reused across calls via Resize/ClearAll rather than reallocated.
package bitset

import "math/bits"

// Bits is a fixed-capacity bitset. Bit i corresponds to the i-th element of
// whatever dense universe the caller works in (timestamps for SPARE,
// interned object indices for the mining hot path). The capacity is set at
// creation and shared by all bitsets an algorithm combines.
type Bits struct {
	n     int
	words []uint64
}

// New returns a bitset with capacity for n bits, all clear.
func New(n int) *Bits {
	if n < 0 {
		n = 0
	}
	return &Bits{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the bitset's capacity in bits.
func (b *Bits) Len() int { return b.n }

// Set sets bit i. Out-of-range indices are ignored.
func (b *Bits) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i. Out-of-range indices are ignored.
func (b *Bits) Clear(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether bit i is set.
func (b *Bits) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of set bits.
func (b *Bits) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of b.
func (b *Bits) Clone() *Bits {
	out := &Bits{n: b.n, words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

// And sets b to b ∩ o in place and returns b. Both bitsets must have the
// same capacity.
func (b *Bits) And(o *Bits) *Bits {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	return b
}

// AndNew returns a new bitset holding b ∩ o.
func (b *Bits) AndNew(o *Bits) *Bits { return b.Clone().And(o) }

// Equal reports whether b and o have the same capacity and the same bits.
func (b *Bits) Equal(o *Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// MaxRun returns the length of the longest run of consecutive set bits.
func (b *Bits) MaxRun() int {
	best, cur := 0, 0
	for i := 0; i < len(b.words); i++ {
		w := b.words[i]
		switch w {
		case 0:
			if cur > best {
				best = cur
			}
			cur = 0
		case ^uint64(0):
			cur += 64
		default:
			for bit := 0; bit < 64; bit++ {
				if w&(1<<uint(bit)) != 0 {
					cur++
					if cur > best {
						best = cur
					}
				} else {
					cur = 0
				}
			}
		}
	}
	if cur > best {
		best = cur
	}
	// Trim runs that spill past n (only possible when n%64 != 0 and the
	// caller never set those bits — Set guards them, so no trim needed).
	return best
}

// Runs returns every maximal run of consecutive set bits with length ≥
// minLen, as [start, end] inclusive index pairs in ascending order.
func (b *Bits) Runs(minLen int) [][2]int {
	if minLen < 1 {
		minLen = 1
	}
	var out [][2]int
	start := -1
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 && i-start >= minLen {
			out = append(out, [2]int{start, i - 1})
		}
		start = -1
	}
	if start >= 0 && b.n-start >= minLen {
		out = append(out, [2]int{start, b.n - 1})
	}
	return out
}

// SetRange sets every bit in [from, to] inclusive, clamped to capacity.
func (b *Bits) SetRange(from, to int) {
	if from < 0 {
		from = 0
	}
	if to >= b.n {
		to = b.n - 1
	}
	for i := from; i <= to; i++ {
		b.Set(i)
	}
}

// ClearAll clears every bit, keeping the capacity, and returns b.
func (b *Bits) ClearAll() *Bits {
	for i := range b.words {
		b.words[i] = 0
	}
	return b
}

// Resize sets b's capacity to n bits, all clear, reusing the backing array
// when it is large enough. This is how pooled scratch buffers follow a
// changing universe (e.g. the per-tick interner of the streaming miner)
// without reallocating. Returns b.
func (b *Bits) Resize(n int) *Bits {
	if n < 0 {
		n = 0
	}
	nw := (n + 63) / 64
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
	} else {
		b.words = b.words[:nw]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
	return b
}

// Any reports whether at least one bit is set.
func (b *Bits) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AndOf sets b = x ∩ y and returns the size of the intersection, in one
// word-parallel pass. All three bitsets must share a capacity (b may alias
// x or y). This is the fused intersect-into + popcount that replaces the
// allocating ObjSet.Intersect in the mining hot path.
func (b *Bits) AndOf(x, y *Bits) int {
	n := 0
	for i := range b.words {
		w := x.words[i] & y.words[i]
		b.words[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns |b ∩ o| without writing anywhere.
func (b *Bits) AndCount(o *Bits) int {
	n := 0
	for i := range b.words {
		n += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return n
}

// AndCountAtLeast reports whether |b ∩ o| ≥ m, returning as soon as the
// running popcount reaches m. The early exit makes it the cheap quick-reject
// before materializing an intersection that must meet a size threshold.
func (b *Bits) AndCountAtLeast(o *Bits, m int) bool {
	if m <= 0 {
		return true
	}
	n := 0
	for i := range b.words {
		if w := b.words[i] & o.words[i]; w != 0 {
			n += bits.OnesCount64(w)
			if n >= m {
				return true
			}
		}
	}
	return false
}

// CountAtLeast reports whether at least m bits are set, with early exit.
func (b *Bits) CountAtLeast(m int) bool {
	if m <= 0 {
		return true
	}
	n := 0
	for _, w := range b.words {
		if w != 0 {
			n += bits.OnesCount64(w)
			if n >= m {
				return true
			}
		}
	}
	return false
}

// Or sets b to b ∪ o in place and returns b. Both bitsets must have the
// same capacity.
func (b *Bits) Or(o *Bits) *Bits {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
	return b
}

// OrOf sets b = x ∪ y and returns the size of the union, in one
// word-parallel pass. All three bitsets must share a capacity.
func (b *Bits) OrOf(x, y *Bits) int {
	n := 0
	for i := range b.words {
		w := x.words[i] | y.words[i]
		b.words[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// SubsetOf reports whether every set bit of b is also set in o
// (word-parallel: b &^ o must be all-zero). Both bitsets must have the same
// capacity. This replaces ObjSet.SubsetOf in the domination pruning loops.
func (b *Bits) SubsetOf(o *Bits) bool {
	for i := range b.words {
		if b.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending index order.
func (b *Bits) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendIndices appends the indices of the set bits to dst in ascending
// order and returns the extended slice. The loop peels one set bit per
// iteration (w &= w-1), so cost is proportional to the popcount, not the
// capacity.
func (b *Bits) AppendIndices(dst []int32) []int32 {
	for wi, w := range b.words {
		base := int32(wi << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// AppendKey appends a compact byte key identifying b's contents (not its
// capacity) to dst and returns the extended slice. Two bitsets over the
// same universe have equal keys iff they hold the same set, so
// string(AppendKey(nil)) is a cheap map key for set-level deduplication —
// 8 bytes per 64 ids instead of ObjSet.Key's formatted decimal string.
func (b *Bits) AppendKey(dst []byte) []byte {
	for _, w := range b.words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// Pool is a grow-only free list of Bits for scope-local reuse: Get hands
// out a cleared bitset of the requested capacity (recycling a previous one
// when available), Reset returns everything to the free list at once. The
// mining loops hold one Pool per scope (per extension walk, per streaming
// miner) and Reset it each level/tick, so steady-state set algebra
// allocates nothing. A Pool is not safe for concurrent use.
type Pool struct {
	bufs []*Bits
	used int
}

// Get returns a cleared bitset with capacity n, recycling a free one when
// possible. The returned bitset belongs to the pool: it is valid until the
// next Reset.
func (p *Pool) Get(n int) *Bits {
	if p.used < len(p.bufs) {
		b := p.bufs[p.used]
		p.used++
		return b.Resize(n)
	}
	b := New(n)
	p.bufs = append(p.bufs, b)
	p.used++
	return b
}

// Reset returns every bitset handed out since the last Reset to the free
// list. Previously returned bitsets must no longer be used.
func (p *Pool) Reset() { p.used = 0 }
