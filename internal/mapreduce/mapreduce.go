// Package mapreduce is a miniature in-process map-reduce runtime standing
// in for the Hadoop/YARN and Spark clusters of the paper's setups B and C
// (see DESIGN.md §3). It reproduces the costs that matter when comparing a
// distributed miner against sequential k/2-hop:
//
//   - bounded parallelism: a worker pool of Cores goroutines per simulated
//     node, tasks queued like containers;
//   - shuffle cost: task inputs and outputs cross a gob-encoded boundary,
//     paying real serialisation work, as records do between cluster nodes;
//   - scheduling overhead: a configurable latency per task launch, modelling
//     container allocation (the paper notes YARN allocation overhead).
//
// DCM and SPARE run their map and reduce phases on this runtime; node and
// core counts are the x-axes of figures 7d–7g.
package mapreduce

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"
)

// Cluster describes the simulated execution substrate.
type Cluster struct {
	// Nodes is the number of machines; Cores the workers per machine.
	Nodes int
	Cores int
	// TaskLatency is charged once per task, modelling container allocation
	// and code shipping. Zero for the "single machine, in-process" setups.
	TaskLatency time.Duration
	// Serialize forces task inputs/outputs through gob encoding, modelling
	// the network shuffle. Single-machine setups leave it off.
	Serialize bool
}

// Local returns a single-machine cluster with the given core count.
func Local(cores int) Cluster { return Cluster{Nodes: 1, Cores: cores} }

// Yarn returns a multi-node cluster with per-task scheduling latency and
// serialised shuffles, mirroring the paper's setup B.
func Yarn(nodes, coresPerNode int) Cluster {
	return Cluster{Nodes: nodes, Cores: coresPerNode, TaskLatency: 2 * time.Millisecond, Serialize: true}
}

// Numa returns a large shared-memory machine (paper setup C): many cores,
// no serialisation, small scheduling latency (Spark standalone).
func Numa(cores int) Cluster {
	return Cluster{Nodes: 1, Cores: cores, TaskLatency: 500 * time.Microsecond}
}

// Workers returns the total worker count of the cluster.
func (c Cluster) Workers() int {
	n := c.Nodes * c.Cores
	if n < 1 {
		return 1
	}
	return n
}

// Run executes one task per input on the cluster and collects the outputs
// in input order. In and Out must be gob-encodable when Serialize is on.
func Run[In any, Out any](c Cluster, inputs []In, task func(In) (Out, error)) ([]Out, error) {
	outs := make([]Out, len(inputs))
	errs := make([]error, len(inputs))
	sem := make(chan struct{}, c.Workers())
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if c.TaskLatency > 0 {
				time.Sleep(c.TaskLatency)
			}
			in := inputs[i]
			if c.Serialize {
				if err := roundTrip(&in); err != nil {
					errs[i] = err
					return
				}
			}
			out, err := task(in)
			if err != nil {
				errs[i] = err
				return
			}
			if c.Serialize {
				if err := roundTrip(&out); err != nil {
					errs[i] = err
					return
				}
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: task %d: %w", i, err)
		}
	}
	return outs, nil
}

// roundTrip gob-encodes and decodes v in place, charging the serialisation
// cost a real shuffle would pay.
func roundTrip[T any](v *T) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	var out T
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	*v = out
	return nil
}
