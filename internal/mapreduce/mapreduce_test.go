package mapreduce

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCollectsInOrder(t *testing.T) {
	in := []int{1, 2, 3, 4, 5}
	out, err := Run(Local(3), in, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 9, 16, 25}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Local(2), []int{1, 2, 3}, func(x int) (int, error) {
		if x == 2 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestBoundedParallelism(t *testing.T) {
	var cur, max int64
	_, err := Run(Local(2), make([]int, 20), func(int) (int, error) {
		c := atomic.AddInt64(&cur, 1)
		for {
			m := atomic.LoadInt64(&max)
			if c <= m || atomic.CompareAndSwapInt64(&max, m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&cur, -1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&max); got > 2 {
		t.Fatalf("parallelism %d exceeded 2 workers", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	type rec struct {
		Name string
		Vals []int
	}
	in := []rec{{Name: "a", Vals: []int{1, 2}}, {Name: "b", Vals: []int{3}}}
	out, err := Run(Cluster{Nodes: 1, Cores: 2, Serialize: true}, in, func(r rec) (rec, error) {
		r.Vals = append(r.Vals, 99)
		return r, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Name != "a" || out[0].Vals[2] != 99 || out[1].Vals[1] != 99 {
		t.Fatalf("out = %v", out)
	}
}

func TestWorkersFloor(t *testing.T) {
	if (Cluster{}).Workers() != 1 {
		t.Fatalf("zero cluster should have 1 worker")
	}
	if Yarn(4, 2).Workers() != 8 {
		t.Fatalf("yarn workers wrong")
	}
	if Numa(32).Workers() != 32 {
		t.Fatalf("numa workers wrong")
	}
}

func TestTaskLatencyCharged(t *testing.T) {
	c := Cluster{Nodes: 1, Cores: 1, TaskLatency: 5 * time.Millisecond}
	start := time.Now()
	if _, err := Run(c, make([]int, 4), func(int) (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("latency not charged: %v", elapsed)
	}
}

func TestEmptyInputs(t *testing.T) {
	out, err := Run(Local(2), nil, func(int) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty run: %v %v", out, err)
	}
}
