package convoy

import (
	"fmt"
	"strings"

	"repro/internal/flock"
	"repro/internal/movingcluster"
)

// This file generalizes the streaming surface of stream.go to the pattern
// families of patterns.go: a convoyd feed can mine convoys (the default),
// flocks, or moving clusters, selected per feed by a Pattern. Each mode is
// a PatternMiner with the same contract as StreamMiner (strictly monotonic
// Observe, gap-closes-everything, duplicate-OID canonicalization), and each
// is byte-identical to its batch counterpart — MineFlocks(sweep) and
// MineMovingClusters share the exact streaming engines underneath.

// Pattern selects the movement-pattern family a streaming feed is mined
// with. The zero value is not valid; use DefaultPattern / ParsePattern.
type Pattern string

// The pattern families servable per feed. PatternMC follows the classical
// MC2 chaining; note it is the one family the k/2-hop technique does NOT
// transfer to (identity churn — see package movingcluster), which is why
// the streaming miner is the only online option for it.
const (
	PatternConvoy Pattern = "convoy"
	PatternFlock  Pattern = "flock"
	PatternMC     Pattern = "mc"
)

// DefaultPattern is what a feed mines when no pattern was negotiated.
const DefaultPattern = PatternConvoy

// ParsePattern validates a pattern name from an API surface. The empty
// string means "unspecified" and maps to DefaultPattern.
func ParsePattern(s string) (Pattern, error) {
	switch Pattern(s) {
	case "":
		return DefaultPattern, nil
	case PatternConvoy, PatternFlock, PatternMC:
		return Pattern(s), nil
	default:
		return "", fmt.Errorf("convoy: unknown pattern %q (want %q, %q or %q)",
			s, PatternConvoy, PatternFlock, PatternMC)
	}
}

// PatternParams bundles the parameters of every pattern family: the convoy
// Params (M, K, Eps) are shared — flock reuses M and K with disk radius R,
// moving clusters reuse M, K and Eps with Jaccard threshold Theta. Zero R
// defaults to Eps; zero Theta defaults to 0.5 (the θ the MC2 literature
// evaluates at).
type PatternParams struct {
	Params
	// R is the flock disk radius (PatternFlock only).
	R float64
	// Theta is the minimum consecutive Jaccard overlap (PatternMC only),
	// in (0, 1].
	Theta float64
}

func (pp PatternParams) withDefaults() PatternParams {
	if pp.R == 0 {
		pp.R = pp.Eps
	}
	if pp.Theta == 0 {
		pp.Theta = 0.5
	}
	return pp
}

func (pp PatternParams) validate() error {
	if err := pp.Params.validate(); err != nil {
		return err
	}
	if !(pp.R > 0) {
		return fmt.Errorf("convoy: flock radius R must be > 0, got %g", pp.R)
	}
	if !(pp.Theta > 0 && pp.Theta <= 1) {
		return fmt.Errorf("convoy: Theta must be in (0, 1], got %g", pp.Theta)
	}
	return nil
}

// PatternResult is one closed pattern of any family. For convoys and flocks
// it is exactly the Convoy (Clusters is nil). For moving clusters, Convoy
// carries the lifetime footprint — Objs is the union of every per-tick
// cluster over [Start, End] — and Clusters holds the per-tick cluster
// sequence itself (Clusters[i] is the cluster at Start+i), which is the
// pattern's real identity.
type PatternResult struct {
	Convoy
	Clusters []ObjSet
}

// PatternKey returns the canonical identity string publish/persist dedup
// runs on. For cluster-free results it is Convoy.Key(); for moving clusters
// the per-tick clusters are folded in, because two distinct chains can share
// a footprint and lifespan.
func (r PatternResult) PatternKey() string {
	if len(r.Clusters) == 0 {
		return r.Convoy.Key()
	}
	var sb strings.Builder
	sb.WriteString(r.Convoy.Key())
	for _, cl := range r.Clusters {
		sb.WriteByte('|')
		sb.WriteString(cl.Key())
	}
	return sb.String()
}

// PatternMiner is the streaming surface every feed mode implements —
// StreamMiner's contract, generalized over the result type. Observe rejects
// non-monotonic timestamps with an error and leaves the miner untouched; a
// gap closes every open pattern; duplicate OIDs within a snapshot are
// canonicalized (last occurrence wins). Closed drains results that closed
// since the last call in O(new); Flush ends the stream and returns the full
// final result set. Not safe for concurrent use.
type PatternMiner interface {
	Observe(t int32, positions []ObjPos) error
	Last() (t int32, ok bool)
	Closed() []PatternResult
	Flush() []PatternResult
	Reset()
}

// NewPatternMiner creates the streaming miner for one pattern family.
// PatternConvoy wraps StreamMiner (the PCCD sweep over incremental DBSCAN);
// PatternFlock runs per-tick disk groups over the shared dense-set sweep
// engine; PatternMC chains per-tick DBSCAN clusters by Jaccard overlap.
func NewPatternMiner(pat Pattern, pp PatternParams) (PatternMiner, error) {
	pp = pp.withDefaults()
	if err := pp.validate(); err != nil {
		return nil, err
	}
	switch pat {
	case PatternConvoy:
		sm, err := NewStreamMiner(pp.Params)
		if err != nil {
			return nil, err
		}
		return &convoyStream{sm: sm}, nil
	case PatternFlock:
		return &flockStream{
			mn:     flock.NewMiner(flock.Config{M: pp.M, K: pp.K, R: pp.R}),
			seen:   map[string]bool{},
			dupChk: map[int32]struct{}{},
		}, nil
	case PatternMC:
		return &mcStream{
			mn:     movingcluster.NewMiner(movingcluster.Config{M: pp.M, Eps: pp.Eps, Theta: pp.Theta, K: pp.K}),
			dupChk: map[int32]struct{}{},
		}, nil
	default:
		return nil, fmt.Errorf("convoy: unknown pattern %q", pat)
	}
}

// convoyStream adapts StreamMiner to the PatternMiner surface.
type convoyStream struct {
	sm *StreamMiner
}

func (s *convoyStream) Observe(t int32, positions []ObjPos) error { return s.sm.Observe(t, positions) }
func (s *convoyStream) Last() (int32, bool)                       { return s.sm.Last() }
func (s *convoyStream) Closed() []PatternResult                   { return wrapConvoys(s.sm.Closed()) }
func (s *convoyStream) Flush() []PatternResult                    { return wrapConvoys(s.sm.Flush()) }
func (s *convoyStream) Reset()                                    { s.sm.Reset() }

func wrapConvoys(cs []Convoy) []PatternResult {
	if len(cs) == 0 {
		return nil
	}
	out := make([]PatternResult, len(cs))
	for i, c := range cs {
		out[i] = PatternResult{Convoy: c}
	}
	return out
}

// flockStream adapts flock.Miner. Like StreamMiner.Closed, the underlying
// engine may re-emit a flock superseded by a longer/larger one, so Closed
// deduplicates by identity.
type flockStream struct {
	mn     *flock.Miner
	seen   map[string]bool
	dupChk map[int32]struct{}
}

func (s *flockStream) Observe(t int32, positions []ObjPos) error {
	if last, ok := s.mn.Last(); ok && t <= last {
		return fmt.Errorf("convoy: non-monotonic stream: observed t=%d after t=%d", t, last)
	}
	s.mn.Step(t, canonPositions(s.dupChk, positions))
	return nil
}

func (s *flockStream) Last() (int32, bool) { return s.mn.Last() }

func (s *flockStream) Closed() []PatternResult {
	var out []PatternResult
	for _, c := range s.mn.Drain() {
		if !s.seen[c.Key()] {
			s.seen[c.Key()] = true
			out = append(out, PatternResult{Convoy: c})
		}
	}
	return out
}

func (s *flockStream) Flush() []PatternResult { return wrapConvoys(s.mn.Finish()) }

func (s *flockStream) Reset() {
	s.mn.Reset()
	s.seen = map[string]bool{}
}

// mcStream adapts movingcluster.Miner. A moving cluster is emitted exactly
// once and never superseded, so no dedup map is needed.
type mcStream struct {
	mn     *movingcluster.Miner
	dupChk map[int32]struct{}
}

func (s *mcStream) Observe(t int32, positions []ObjPos) error {
	if last, ok := s.mn.Last(); ok && t <= last {
		return fmt.Errorf("convoy: non-monotonic stream: observed t=%d after t=%d", t, last)
	}
	s.mn.Step(t, canonPositions(s.dupChk, positions))
	return nil
}

func (s *mcStream) Last() (int32, bool) { return s.mn.Last() }

func (s *mcStream) Closed() []PatternResult { return wrapMCs(s.mn.Drain()) }
func (s *mcStream) Flush() []PatternResult  { return wrapMCs(s.mn.Finish()) }
func (s *mcStream) Reset()                  { s.mn.Reset() }

func wrapMCs(mcs []MovingCluster) []PatternResult {
	if len(mcs) == 0 {
		return nil
	}
	out := make([]PatternResult, len(mcs))
	for i, mc := range mcs {
		out[i] = PatternResult{
			Convoy:   Convoy{Objs: mc.Members(), Start: mc.Start, End: mc.End()},
			Clusters: mc.Clusters,
		}
	}
	return out
}
