package convoy

// Differential walls for the flock and moving-cluster streaming feed modes,
// mirroring differential_test.go's convoy wall: the PatternMiner the convoyd
// shard actors run must be byte-identical to the batch miners (MineFlocks
// sweep, MineMovingClusters) over 120 seeded random datasets per generator,
// and a streaming timestamp gap must equal batch-mining with those ticks
// empty.

import (
	"strings"
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
)

// canonMCs renders a moving-cluster result set canonically: one Key per
// pattern, in emission order (the order is part of the contract — both
// sides run the same greedy chaining).
func canonMCs(mcs []MovingCluster) string {
	var sb strings.Builder
	for _, mc := range mcs {
		sb.WriteString(mc.Key())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// canonMCResults is canonMCs over the streaming PatternResult wrapping.
func canonMCResults(rs []PatternResult) string {
	mcs := make([]MovingCluster, len(rs))
	for i, r := range rs {
		mcs[i] = MovingCluster{Start: r.Start, Clusters: r.Clusters}
	}
	return canonMCs(mcs)
}

// streamPattern runs a fresh PatternMiner over every snapshot of ds and
// returns the flushed result set.
func streamPattern(t *testing.T, pat Pattern, pp PatternParams, ds *model.Dataset) []PatternResult {
	t.Helper()
	pm, err := NewPatternMiner(pat, pp)
	if err != nil {
		t.Fatal(err)
	}
	ts, te := ds.TimeRange()
	for tt := ts; tt <= te; tt++ {
		if err := pm.Observe(tt, ds.Snapshot(tt)); err != nil {
			t.Fatalf("observe t=%d: %v", tt, err)
		}
	}
	return pm.Flush()
}

// resultConvoys projects a cluster-free result set back to convoys.
func resultConvoys(rs []PatternResult) []Convoy {
	out := make([]Convoy, len(rs))
	for i, r := range rs {
		out[i] = r.Convoy
	}
	return out
}

// TestDifferentialFlockStreamVsBatch mines 120 seeded datasets per generator
// both through the streaming flock feed mode and the batch sweep, requiring
// byte-identical canonical results.
func TestDifferentialFlockStreamVsBatch(t *testing.T) {
	gens := []struct {
		name string
		gen  func(seed int64, nObj, nTicks int) *model.Dataset
	}{
		{"churn", minetest.RandomChurn},
		{"clique", minetest.RandomClique},
	}
	pp := PatternParams{Params: Params{M: 3, K: 3, Eps: minetest.Eps}, R: 2.0}
	for _, g := range gens {
		for seed := int64(0); seed < 120; seed++ {
			nObj := 8 + int(seed%5)
			nTicks := 12 + int(seed%9)
			ds := g.gen(seed, nObj, nTicks)

			got := resultConvoys(streamPattern(t, PatternFlock, pp, ds))
			want, err := MineFlocks(NewMemStore(ds), FlockParams{M: pp.M, K: pp.K, R: pp.R}, true)
			if err != nil {
				t.Fatal(err)
			}
			if d := minetest.DiffConvoys("stream-flock", got, "batch-sweep", want); d != "" {
				t.Fatalf("%s seed %d (%d objs × %d ticks): %s", g.name, seed, nObj, nTicks, d)
			}
			if sg, sb := minetest.Canonical(got), minetest.Canonical(want); sg != sb {
				t.Fatalf("%s seed %d: canonical renderings differ:\nstream:\n%s\nbatch:\n%s", g.name, seed, sg, sb)
			}
		}
	}
}

// TestDifferentialMovingClusterStreamVsBatch is the same wall for the
// moving-cluster feed mode: the streaming Jaccard chaining must reproduce
// MineMovingClusters exactly — same chains, same per-tick cluster sequences,
// same emission order.
func TestDifferentialMovingClusterStreamVsBatch(t *testing.T) {
	gens := []struct {
		name string
		gen  func(seed int64, nObj, nTicks int) *model.Dataset
	}{
		{"churn", minetest.RandomChurn},
		{"clique", minetest.RandomClique},
	}
	pp := PatternParams{Params: Params{M: 3, K: 3, Eps: minetest.Eps}, Theta: 0.5}
	for _, g := range gens {
		for seed := int64(0); seed < 120; seed++ {
			nObj := 8 + int(seed%5)
			nTicks := 12 + int(seed%9)
			ds := g.gen(seed, nObj, nTicks)

			got := streamPattern(t, PatternMC, pp, ds)
			want, err := MineMovingClusters(NewMemStore(ds), MovingClusterParams{M: pp.M, Eps: pp.Eps, Theta: pp.Theta, K: pp.K})
			if err != nil {
				t.Fatal(err)
			}
			if sg, sb := canonMCResults(got), canonMCs(want); sg != sb {
				t.Fatalf("%s seed %d (%d objs × %d ticks): moving clusters differ:\nstream:\n%s\nbatch:\n%s",
					g.name, seed, nObj, nTicks, sg, sb)
			}
		}
	}
}

// TestDifferentialPatternGapEqualsEmptyTicks checks the gap contract every
// streaming mode shares: skipping timestamps on the stream must equal
// batch-mining a dataset whose skipped ticks are simply empty. Every third
// tick of each dataset is dropped.
func TestDifferentialPatternGapEqualsEmptyTicks(t *testing.T) {
	pp := PatternParams{Params: Params{M: 3, K: 2, Eps: minetest.Eps}, R: 2.0, Theta: 0.5}
	dropped := func(tt int32) bool { return tt%3 == 2 }
	for seed := int64(0); seed < 40; seed++ {
		full := minetest.RandomChurn(seed, 10, 15)
		ts, te := full.TimeRange()
		// The batch oracle's dataset: the dropped ticks hold no points. Keep
		// a sentinel point at ts and te so the time range is preserved even
		// when an endpoint tick is dropped.
		var pts []model.Point
		for tt := ts; tt <= te; tt++ {
			if dropped(tt) && tt != ts && tt != te {
				continue
			}
			for _, p := range full.Snapshot(tt) {
				pts = append(pts, model.Point{OID: p.OID, T: tt, X: p.X, Y: p.Y})
			}
		}
		gapped := model.NewDataset(pts)

		// Flock: stream with gaps vs batch over the gapped dataset.
		fm, err := NewPatternMiner(PatternFlock, pp)
		if err != nil {
			t.Fatal(err)
		}
		// Moving cluster likewise.
		mm, err := NewPatternMiner(PatternMC, pp)
		if err != nil {
			t.Fatal(err)
		}
		for tt := ts; tt <= te; tt++ {
			if dropped(tt) && tt != ts && tt != te {
				continue
			}
			if err := fm.Observe(tt, gapped.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
			if err := mm.Observe(tt, gapped.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
		}

		wantF, err := MineFlocks(NewMemStore(gapped), FlockParams{M: pp.M, K: pp.K, R: pp.R}, true)
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("gapped-stream", resultConvoys(fm.Flush()), "empty-tick-batch", wantF); d != "" {
			t.Fatalf("flock seed %d: %s", seed, d)
		}

		wantM, err := MineMovingClusters(NewMemStore(gapped), MovingClusterParams{M: pp.M, Eps: pp.Eps, Theta: pp.Theta, K: pp.K})
		if err != nil {
			t.Fatal(err)
		}
		if sg, sb := canonMCResults(mm.Flush()), canonMCs(wantM); sg != sb {
			t.Fatalf("mc seed %d: gapped stream differs from empty-tick batch:\nstream:\n%s\nbatch:\n%s", seed, sg, sb)
		}
	}
}

// TestDifferentialPatternMinerResetReuse checks that one PatternMiner per
// family, Reset between streams, matches fresh batch results — the reuse
// pattern TTL eviction plus feed recreation depends on.
func TestDifferentialPatternMinerResetReuse(t *testing.T) {
	pp := PatternParams{Params: Params{M: 3, K: 3, Eps: minetest.Eps}, R: 2.0, Theta: 0.5}
	fm, err := NewPatternMiner(PatternFlock, pp)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewPatternMiner(PatternMC, pp)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		ds := minetest.RandomChurn(seed, 9, 14)
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := fm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
			if err := mm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
		}
		wantF, err := MineFlocks(NewMemStore(ds), FlockParams{M: pp.M, K: pp.K, R: pp.R}, true)
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("reused-flock", resultConvoys(fm.Flush()), "batch", wantF); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
		wantM, err := MineMovingClusters(NewMemStore(ds), MovingClusterParams{M: pp.M, Eps: pp.Eps, Theta: pp.Theta, K: pp.K})
		if err != nil {
			t.Fatal(err)
		}
		if sg, sb := canonMCResults(mm.Flush()), canonMCs(wantM); sg != sb {
			t.Fatalf("seed %d: reused mc miner differs:\nstream:\n%s\nbatch:\n%s", seed, sg, sb)
		}
		fm.Reset()
		mm.Reset()
	}
}
