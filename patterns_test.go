package convoy

import (
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
)

// A scenario where the three pattern classes disagree, demonstrating their
// semantics side by side:
//
//   - a chain of 4 objects spaced just under eps: a convoy (density
//     connected), not a flock for small r (diameter too large);
//   - a churning cluster: a moving cluster, neither convoy nor flock.
func patternScenario() *Dataset {
	var pts []Point
	for t := int32(0); t < 12; t++ {
		// The chain, drifting east.
		for i := int32(0); i < 4; i++ {
			pts = append(pts, Point{OID: i, T: t, X: float64(t)*3 + float64(i)*1.2, Y: 0})
		}
		// The churning group around (100, 100): members rotate every 4 ticks.
		stage := t / 4
		for s := int32(0); s < 3; s++ {
			oid := 20 + stage + s // windows {20,21,22},{21,22,23},{22,23,24}
			pts = append(pts, Point{OID: oid, T: t, X: 100 + float64(s)*1.2, Y: 100})
		}
	}
	return NewDataset(pts)
}

func TestPatternSemanticsDiffer(t *testing.T) {
	ds := patternScenario()

	// Convoy: the 4-chain qualifies (density-connected with eps=2.5, which
	// makes the interior points core under minPts=4), full 12 ticks.
	cres, err := MineDataset(ds, Params{M: 4, K: 12, Eps: 2.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Convoys) != 1 || !cres.Convoys[0].Objs.Equal(NewObjSet(0, 1, 2, 3)) {
		t.Fatalf("convoy result: %v", cres.Convoys)
	}

	// Flock with r=1.2: the chain's diameter is 3.6, so no 4-flock exists.
	flocks, err := MineFlocks(NewMemStore(ds), FlockParams{M: 4, K: 12, R: 1.2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(flocks) != 0 {
		t.Fatalf("no radius-1.2 flock of 4 should exist: %v", flocks)
	}
	// But sub-pairs do fit a disk.
	flocks, err = MineFlocks(NewMemStore(ds), FlockParams{M: 2, K: 12, R: 1.2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(flocks) == 0 {
		t.Fatalf("pair flocks should exist")
	}

	// Moving cluster: the churning group survives the member rotation.
	mcs, err := MineMovingClusters(NewMemStore(ds), MovingClusterParams{
		M: 3, Eps: minetest.Eps, Theta: 0.4, K: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	foundChurn := false
	for _, mc := range mcs {
		if mc.Len() == 12 && mc.Clusters[0].Contains(20) && !mc.Clusters[11].Contains(20) {
			foundChurn = true
		}
	}
	if !foundChurn {
		t.Fatalf("churning moving cluster not found: %+v", mcs)
	}
	// No convoy of length 12 exists among the churners (object 20 leaves).
	cres, err = MineDataset(ds, Params{M: 3, K: 12, Eps: 2.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cres.Convoys {
		if c.Objs.Contains(20) {
			t.Fatalf("churner should not form a 12-tick convoy: %v", c)
		}
	}
}

func TestMineFlocksSweepMatchesK2Hop(t *testing.T) {
	ds := patternScenario()
	p := FlockParams{M: 2, K: 6, R: 1.5}
	fast, err := MineFlocks(NewMemStore(ds), p, false)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MineFlocks(NewMemStore(ds), p, true)
	if err != nil {
		t.Fatal(err)
	}
	if !model.ConvoysEqual(fast, base) {
		t.Fatalf("k2hop flocks %v != sweep flocks %v", fast, base)
	}
}
