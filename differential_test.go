package convoy

// Differential tests: the streaming miner against the batch sweep on
// arbitrary random data, and every Options.Algorithm against every other on
// clique-cluster data where FC and PC semantics provably coincide (see
// internal/minetest/differential.go). These are the backbone that keeps
// future algorithm changes honest: any divergence between two
// implementations of the same semantics fails loudly with a set diff.

import (
	"reflect"
	"testing"

	"repro/internal/datagen/brinkhoff"
	"repro/internal/dbscan"
	"repro/internal/minetest"
	"repro/internal/model"
)

// TestDifferentialStreamVsBatch mines ≥100 seeded random datasets both
// incrementally (Observe/Flush) and in batch (PCCD over a store) and
// requires byte-identical canonical results.
func TestDifferentialStreamVsBatch(t *testing.T) {
	const trials = 120
	for seed := int64(0); seed < trials; seed++ {
		nObj := 8 + int(seed%5)
		nTicks := 12 + int(seed%9)
		ds := minetest.Random(seed, nObj, nTicks)
		p := Params{M: 3, K: 4, Eps: minetest.Eps}

		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatalf("seed %d: observe t=%d: %v", seed, tt, err)
			}
		}
		got := sm.Flush()

		want, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("stream", got, "batch", want.Convoys); d != "" {
			t.Fatalf("seed %d (%d objs × %d ticks): %s", seed, nObj, nTicks, d)
		}
		if sg, sb := minetest.Canonical(got), minetest.Canonical(want.Convoys); sg != sb {
			t.Fatalf("seed %d: canonical renderings differ:\nstream:\n%s\nbatch:\n%s", seed, sg, sb)
		}
	}
}

// TestDifferentialAllAlgorithms runs every algorithm over clique-cluster
// datasets — where fully and partially connected convoy semantics coincide
// — and requires all seven result sets (plus the streaming miner's) to be
// identical. Since the dense-set refactor, the k/2-hop, PCCD, DCM and
// streaming paths run entirely on interned bitsets while VCoDA, VCoDA*,
// CuTS and SPARE kept their original representations, so this suite doubles
// as a 120-seed cross-representation equivalence check.
func TestDifferentialAllAlgorithms(t *testing.T) {
	algos := []Algorithm{K2Hop, VCoDA, VCoDAStar, PCCD, CuTS, DCM, SPARE}
	p := Params{M: 3, K: 4, Eps: minetest.Eps}
	for seed := int64(0); seed < 120; seed++ {
		nObj := 8 + int(seed%4)
		nTicks := 12 + int(seed%6)
		ds := minetest.RandomClique(seed, nObj, nTicks)
		if !minetest.CliqueClusters(ds, p.Eps, p.M) {
			t.Fatalf("seed %d: RandomClique produced a non-clique cluster; premise broken", seed)
		}

		ref, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range algos {
			res, err := MineDataset(ds, p, &Options{Algorithm: algo})
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, algo, err)
			}
			if d := minetest.DiffConvoys(string(algo), res.Convoys, "pccd", ref.Convoys); d != "" {
				t.Fatalf("seed %d (%d objs × %d ticks): %s", seed, nObj, nTicks, d)
			}
		}

		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
		}
		if d := minetest.DiffConvoys("stream", sm.Flush(), "pccd", ref.Convoys); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
	}
}

// TestDifferentialDenseVsSortedReference pins the word-parallel set engine
// to the representation it replaced: minetest.ReferencePCCD is a frozen
// sorted-slice transliteration of the PCCD sweep (ObjSet.Intersect /
// ObjSet.SubsetOf, no interning), and over 120 seeded random datasets both
// the batch miner and the streaming miner — which run every intersection,
// size test and domination prune on interned dense bitsets — must produce
// byte-identical canonical output. Convoy values, not just set membership:
// Canonical renders ids, starts and ends.
func TestDifferentialDenseVsSortedReference(t *testing.T) {
	const trials = 120
	for seed := int64(0); seed < trials; seed++ {
		nObj := 8 + int(seed%5)
		nTicks := 12 + int(seed%9)
		ds := minetest.Random(seed, nObj, nTicks)
		p := Params{M: 3, K: 4, Eps: minetest.Eps}

		want := minetest.ReferencePCCD(ds, p.M, p.K, p.Eps)

		batch, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("dense-batch", batch.Convoys, "sorted-reference", want); d != "" {
			t.Fatalf("seed %d (%d objs × %d ticks): %s", seed, nObj, nTicks, d)
		}

		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
		}
		got := sm.Flush()
		if d := minetest.DiffConvoys("dense-stream", got, "sorted-reference", want); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
		if sg, sw := minetest.Canonical(got), minetest.Canonical(want); sg != sw {
			t.Fatalf("seed %d: canonical renderings differ:\ndense:\n%s\nreference:\n%s", seed, sg, sw)
		}
	}
}

// TestDifferentialStreamResetReuse checks that one StreamMiner instance,
// Reset between streams, matches fresh-miner results — the reuse pattern
// the convoyd shard actors depend on.
func TestDifferentialStreamResetReuse(t *testing.T) {
	p := Params{M: 3, K: 4, Eps: minetest.Eps}
	sm, err := NewStreamMiner(p)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		ds := minetest.Random(seed, 9, 14)
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
		}
		got := sm.Flush()
		want, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("reused-stream", got, "batch", want.Convoys); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
		sm.Reset()
	}
}

// TestDifferentialIncrementalClustersVsScratch is the clustering-level half
// of the incremental proof: one dbscan.Incremental per dataset, fed every
// snapshot in order, must emit reflect.DeepEqual output to a scratch
// dbscan.Cluster call at every single tick — same member sets, same member
// order, same cluster order, nil-vs-empty included. 120 seeds of the
// always-present generator plus 120 seeds of the churn generator (objects
// joining and leaving mid-stream), the exact regime the delta engine
// carries state through.
func TestDifferentialIncrementalClustersVsScratch(t *testing.T) {
	gens := []struct {
		name string
		gen  func(seed int64, nObj, nTicks int) *model.Dataset
	}{
		{"random", minetest.Random},
		{"churn", minetest.RandomChurn},
	}
	for _, g := range gens {
		for seed := int64(0); seed < 120; seed++ {
			nObj := 8 + int(seed%5)
			nTicks := 12 + int(seed%9)
			ds := g.gen(seed, nObj, nTicks)
			inc, err := dbscan.NewIncremental(minetest.Eps, 3)
			if err != nil {
				t.Fatal(err)
			}
			ts, te := ds.TimeRange()
			for tt := ts; tt <= te; tt++ {
				snap := ds.Snapshot(tt)
				got := inc.Step(snap)
				want := dbscan.Cluster(snap, minetest.Eps, 3)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s seed %d t=%d: incremental %v != scratch %v", g.name, seed, tt, got, want)
				}
			}
			if st := inc.Stats(); st.Fallbacks != 0 {
				t.Fatalf("%s seed %d: unexpected fallback ticks: %+v", g.name, seed, st)
			}
		}
	}
}

// TestDifferentialStreamVsBatchChurn is TestDifferentialStreamVsBatch over
// the high-churn generator: objects join and leave the feed mid-stream, so
// the streaming side's incremental clustering state sees appearance and
// disappearance deltas on nearly every tick, and its convoy output must
// still be byte-identical to the batch oracle.
func TestDifferentialStreamVsBatchChurn(t *testing.T) {
	const trials = 120
	for seed := int64(0); seed < trials; seed++ {
		nObj := 8 + int(seed%5)
		nTicks := 12 + int(seed%9)
		ds := minetest.RandomChurn(seed, nObj, nTicks)
		p := Params{M: 3, K: 4, Eps: minetest.Eps}

		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatalf("seed %d: observe t=%d: %v", seed, tt, err)
			}
		}
		got := sm.Flush()

		want, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("stream", got, "batch", want.Convoys); d != "" {
			t.Fatalf("seed %d (%d objs × %d ticks): %s", seed, nObj, nTicks, d)
		}
		if sg, sb := minetest.Canonical(got), minetest.Canonical(want.Convoys); sg != sb {
			t.Fatalf("seed %d: canonical renderings differ:\nstream:\n%s\nbatch:\n%s", seed, sg, sb)
		}
	}
}

// TestDifferentialStreamVsBatchBrinkhoff runs the stream-vs-batch
// differential over small road-network datasets: Brinkhoff traffic has
// structural churn (objects spawn every tick and disappear on arrival at
// their destination), which is the production-shaped counterpart to
// RandomChurn's uniform coin flips.
func TestDifferentialStreamVsBatchBrinkhoff(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		bp := brinkhoff.Params{
			Seed: seed, GridW: 8, GridH: 8, SpaceW: 2000, SpaceH: 2000,
			MaxTime: 60, ObjBegin: 40, ObjPerTick: 3, Classes: 3,
			PlatoonFraction: 0.4, PlatoonSize: 4, PlatoonSpread: 20, Jitter: 10,
		}
		ds := brinkhoff.Generate(bp)
		p := Params{M: 3, K: 3, Eps: 40}

		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatalf("seed %d: observe t=%d: %v", seed, tt, err)
			}
		}
		got := sm.Flush()

		want, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("stream", got, "batch", want.Convoys); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
	}
}

// TestDifferentialMaximality spot-checks the shared output contract on the
// differential datasets: every reported convoy really is a convoy, and no
// reported convoy is a strict sub-convoy of another.
func TestDifferentialMaximality(t *testing.T) {
	p := Params{M: 3, K: 4, Eps: minetest.Eps}
	for seed := int64(0); seed < 25; seed++ {
		ds := minetest.Random(seed, 10, 16)
		res, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Convoys {
			if !minetest.IsConvoy(ds, c, p.M, p.Eps) {
				t.Fatalf("seed %d: %v is not a convoy", seed, c)
			}
		}
		if i, j := minetest.AssertMaximal(res.Convoys); i >= 0 {
			t.Fatalf("seed %d: convoy %v ⊂ %v", seed, res.Convoys[i], res.Convoys[j])
		}
	}
}
