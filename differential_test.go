package convoy

// Differential tests: the streaming miner against the batch sweep on
// arbitrary random data, and every Options.Algorithm against every other on
// clique-cluster data where FC and PC semantics provably coincide (see
// internal/minetest/differential.go). These are the backbone that keeps
// future algorithm changes honest: any divergence between two
// implementations of the same semantics fails loudly with a set diff.

import (
	"testing"

	"repro/internal/minetest"
)

// TestDifferentialStreamVsBatch mines ≥100 seeded random datasets both
// incrementally (Observe/Flush) and in batch (PCCD over a store) and
// requires byte-identical canonical results.
func TestDifferentialStreamVsBatch(t *testing.T) {
	const trials = 120
	for seed := int64(0); seed < trials; seed++ {
		nObj := 8 + int(seed%5)
		nTicks := 12 + int(seed%9)
		ds := minetest.Random(seed, nObj, nTicks)
		p := Params{M: 3, K: 4, Eps: minetest.Eps}

		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatalf("seed %d: observe t=%d: %v", seed, tt, err)
			}
		}
		got := sm.Flush()

		want, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("stream", got, "batch", want.Convoys); d != "" {
			t.Fatalf("seed %d (%d objs × %d ticks): %s", seed, nObj, nTicks, d)
		}
		if sg, sb := minetest.Canonical(got), minetest.Canonical(want.Convoys); sg != sb {
			t.Fatalf("seed %d: canonical renderings differ:\nstream:\n%s\nbatch:\n%s", seed, sg, sb)
		}
	}
}

// TestDifferentialAllAlgorithms runs every algorithm over clique-cluster
// datasets — where fully and partially connected convoy semantics coincide
// — and requires all seven result sets (plus the streaming miner's) to be
// identical. Since the dense-set refactor, the k/2-hop, PCCD, DCM and
// streaming paths run entirely on interned bitsets while VCoDA, VCoDA*,
// CuTS and SPARE kept their original representations, so this suite doubles
// as a 120-seed cross-representation equivalence check.
func TestDifferentialAllAlgorithms(t *testing.T) {
	algos := []Algorithm{K2Hop, VCoDA, VCoDAStar, PCCD, CuTS, DCM, SPARE}
	p := Params{M: 3, K: 4, Eps: minetest.Eps}
	for seed := int64(0); seed < 120; seed++ {
		nObj := 8 + int(seed%4)
		nTicks := 12 + int(seed%6)
		ds := minetest.RandomClique(seed, nObj, nTicks)
		if !minetest.CliqueClusters(ds, p.Eps, p.M) {
			t.Fatalf("seed %d: RandomClique produced a non-clique cluster; premise broken", seed)
		}

		ref, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range algos {
			res, err := MineDataset(ds, p, &Options{Algorithm: algo})
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, algo, err)
			}
			if d := minetest.DiffConvoys(string(algo), res.Convoys, "pccd", ref.Convoys); d != "" {
				t.Fatalf("seed %d (%d objs × %d ticks): %s", seed, nObj, nTicks, d)
			}
		}

		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
		}
		if d := minetest.DiffConvoys("stream", sm.Flush(), "pccd", ref.Convoys); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
	}
}

// TestDifferentialDenseVsSortedReference pins the word-parallel set engine
// to the representation it replaced: minetest.ReferencePCCD is a frozen
// sorted-slice transliteration of the PCCD sweep (ObjSet.Intersect /
// ObjSet.SubsetOf, no interning), and over 120 seeded random datasets both
// the batch miner and the streaming miner — which run every intersection,
// size test and domination prune on interned dense bitsets — must produce
// byte-identical canonical output. Convoy values, not just set membership:
// Canonical renders ids, starts and ends.
func TestDifferentialDenseVsSortedReference(t *testing.T) {
	const trials = 120
	for seed := int64(0); seed < trials; seed++ {
		nObj := 8 + int(seed%5)
		nTicks := 12 + int(seed%9)
		ds := minetest.Random(seed, nObj, nTicks)
		p := Params{M: 3, K: 4, Eps: minetest.Eps}

		want := minetest.ReferencePCCD(ds, p.M, p.K, p.Eps)

		batch, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("dense-batch", batch.Convoys, "sorted-reference", want); d != "" {
			t.Fatalf("seed %d (%d objs × %d ticks): %s", seed, nObj, nTicks, d)
		}

		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
		}
		got := sm.Flush()
		if d := minetest.DiffConvoys("dense-stream", got, "sorted-reference", want); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
		if sg, sw := minetest.Canonical(got), minetest.Canonical(want); sg != sw {
			t.Fatalf("seed %d: canonical renderings differ:\ndense:\n%s\nreference:\n%s", seed, sg, sw)
		}
	}
}

// TestDifferentialStreamResetReuse checks that one StreamMiner instance,
// Reset between streams, matches fresh-miner results — the reuse pattern
// the convoyd shard actors depend on.
func TestDifferentialStreamResetReuse(t *testing.T) {
	p := Params{M: 3, K: 4, Eps: minetest.Eps}
	sm, err := NewStreamMiner(p)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		ds := minetest.Random(seed, 9, 14)
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			if err := sm.Observe(tt, ds.Snapshot(tt)); err != nil {
				t.Fatal(err)
			}
		}
		got := sm.Flush()
		want, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if d := minetest.DiffConvoys("reused-stream", got, "batch", want.Convoys); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
		sm.Reset()
	}
}

// TestDifferentialMaximality spot-checks the shared output contract on the
// differential datasets: every reported convoy really is a convoy, and no
// reported convoy is a strict sub-convoy of another.
func TestDifferentialMaximality(t *testing.T) {
	p := Params{M: 3, K: 4, Eps: minetest.Eps}
	for seed := int64(0); seed < 25; seed++ {
		ds := minetest.Random(seed, 10, 16)
		res, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Convoys {
			if !minetest.IsConvoy(ds, c, p.M, p.Eps) {
				t.Fatalf("seed %d: %v is not a convoy", seed, c)
			}
		}
		if i, j := minetest.AssertMaximal(res.Convoys); i >= 0 {
			t.Fatalf("seed %d: convoy %v ⊂ %v", seed, res.Convoys[i], res.Convoys[j])
		}
	}
}
