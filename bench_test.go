package convoy_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6). Each benchmark regenerates its experiment at Tiny scale — the
// experiment functions are the same ones `cmd/experiments` runs at larger
// scales; see DESIGN.md §5 for the index and EXPERIMENTS.md for the
// paper-vs-measured record. The Benchmark*Algo benches at the bottom
// measure the individual miners head-to-head on one dataset, which is the
// quickest way to see the k/2-hop gain without running a whole figure.

import (
	"fmt"
	"math/rand"
	"testing"

	convoy "repro"
	"repro/internal/bitset"
	"repro/internal/experiments"
	"repro/internal/model"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	// Warm the dataset cache so generation cost is not measured.
	for _, spec := range experiments.Datasets() {
		spec.Build(experiments.Tiny)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.Tiny); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// --- Figure 7 -------------------------------------------------------------

func BenchmarkFig7a_GainOverVCoDAStar_Trucks(b *testing.B) { benchExperiment(b, "fig7a") }
func BenchmarkFig7b_GainOverVCoDAStar_TDrive(b *testing.B) { benchExperiment(b, "fig7b") }
func BenchmarkFig7c_RDBMSvsLSMT_Brinkhoff(b *testing.B)    { benchExperiment(b, "fig7c") }
func BenchmarkFig7d_GainOverSPARE_Single(b *testing.B)     { benchExperiment(b, "fig7d") }
func BenchmarkFig7e_GainOverSPARE_Yarn(b *testing.B)       { benchExperiment(b, "fig7e") }
func BenchmarkFig7f_GainOverSPARE_Numa(b *testing.B)       { benchExperiment(b, "fig7f") }
func BenchmarkFig7g_GainOverDCM_Yarn(b *testing.B)         { benchExperiment(b, "fig7g") }
func BenchmarkFig7h_EffectOfK_Trucks(b *testing.B)         { benchExperiment(b, "fig7h") }

// --- Figure 8 -------------------------------------------------------------

func BenchmarkFig8a_EffectOfK_TDrive(b *testing.B)      { benchExperiment(b, "fig8a") }
func BenchmarkFig8b_EffectOfK_Brinkhoff(b *testing.B)   { benchExperiment(b, "fig8b") }
func BenchmarkFig8c_EffectOfM_Trucks(b *testing.B)      { benchExperiment(b, "fig8c") }
func BenchmarkFig8d_EffectOfM_TDrive(b *testing.B)      { benchExperiment(b, "fig8d") }
func BenchmarkFig8e_EffectOfM_Brinkhoff(b *testing.B)   { benchExperiment(b, "fig8e") }
func BenchmarkFig8f_EffectOfEps_Trucks(b *testing.B)    { benchExperiment(b, "fig8f") }
func BenchmarkFig8g_EffectOfEps_TDrive(b *testing.B)    { benchExperiment(b, "fig8g") }
func BenchmarkFig8h_EffectOfEps_Brinkhoff(b *testing.B) { benchExperiment(b, "fig8h") }
func BenchmarkFig8i_PhaseBreakdown_LSMT(b *testing.B)   { benchExperiment(b, "fig8i") }
func BenchmarkFig8j_PreValidationConvoys(b *testing.B)  { benchExperiment(b, "fig8j") }
func BenchmarkFig8k_EffectOfConvoyCount(b *testing.B)   { benchExperiment(b, "fig8k") }
func BenchmarkFig8l_DataSizeScalability(b *testing.B)   { benchExperiment(b, "fig8l") }

// --- Ablations (DESIGN.md §7; not a paper figure) ---------------------------

func BenchmarkAblation_DesignChoices(b *testing.B) { benchExperiment(b, "ablation") }

// --- Tables ---------------------------------------------------------------

func BenchmarkTable4_BrinkhoffProperties(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5_PruningPerformance(b *testing.B)  { benchExperiment(b, "table5") }

// --- Head-to-head algorithm benches on the T-Drive dataset ----------------

func benchAlgo(b *testing.B, algo convoy.Algorithm, workers int) {
	b.Helper()
	spec := experiments.TDriveSpec()
	ds := spec.Build(experiments.Tiny)
	p := convoy.Params{M: spec.M, K: spec.KMid(ds), Eps: spec.Eps}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := convoy.MineDataset(ds, p, &convoy.Options{Algorithm: algo, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkK2HopParallel sweeps the worker-pool size over the k/2-hop
// pipeline on the T-Drive dataset: workers=1 is the sequential baseline
// the parallel runs must beat (and whose output they must reproduce
// byte-identically — see TestMineParallelDeterminism).
func BenchmarkK2HopParallel(b *testing.B) {
	spec := experiments.TDriveSpec()
	ds := spec.Build(experiments.Tiny)
	p := convoy.Params{M: spec.M, K: spec.KMid(ds), Eps: spec.Eps}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := convoy.MineDataset(ds, p, &convoy.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Set-representation micro-benchmarks ----------------------------------

// BenchmarkIntersect measures one candidate×cluster intersection — the
// operation the mining hot path performs millions of times — in the two
// representations the engine supports: the sorted-slice ObjSet merge
// (allocating, O(|a|+|b|)) and the interned dense bitset AND (word-parallel,
// O(universe/64), intersecting into a reused buffer). The dense/and+decode
// variant adds the ObjSet materialization that production pays only for
// intersections meeting the m threshold. Encoding costs are amortized: the
// miners encode each set once per tick/window and intersect it against many
// partners.
func BenchmarkIntersect(b *testing.B) {
	cases := []struct{ universe, size int }{
		{universe: 64, size: 16},
		{universe: 512, size: 64},
		{universe: 512, size: 256},
		{universe: 4096, size: 512},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(int64(tc.universe*31 + tc.size)))
		pick := func() model.ObjSet {
			// Draw until tc.size DISTINCT ids so the benchmark name's s=
			// matches the actual set size.
			seen := make(map[int32]bool, tc.size)
			ids := make([]int32, 0, tc.size)
			for len(ids) < tc.size {
				id := int32(rng.Intn(tc.universe)) * 3 // sparse ids
				if !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
			return model.NewObjSet(ids...)
		}
		sa, sb := pick(), pick()
		in := model.Intern(model.Universe(nil, []model.ObjSet{sa, sb}))
		da, db := in.Encode(sa, nil), in.Encode(sb, nil)
		scratch := bitset.New(in.Len())
		name := fmt.Sprintf("u=%d,s=%d", tc.universe, tc.size)

		b.Run("objset/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(sa.Intersect(sb)) < 0 {
					b.Fatal("impossible")
				}
			}
		})
		b.Run("dense/and/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if scratch.AndOf(da, db) < 0 {
					b.Fatal("impossible")
				}
			}
		})
		b.Run("dense/and+decode/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scratch.AndOf(da, db)
				if len(in.Decode(scratch)) < 0 {
					b.Fatal("impossible")
				}
			}
		})
		b.Run("objset/subset/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink := sa.SubsetOf(sb)
				_ = sink
			}
		})
		b.Run("dense/subset/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink := da.SubsetOf(db)
				_ = sink
			}
		})
	}
}

func BenchmarkAlgoK2Hop(b *testing.B)     { benchAlgo(b, convoy.K2Hop, 1) }
func BenchmarkAlgoVCoDA(b *testing.B)     { benchAlgo(b, convoy.VCoDA, 1) }
func BenchmarkAlgoVCoDAStar(b *testing.B) { benchAlgo(b, convoy.VCoDAStar, 1) }
func BenchmarkAlgoPCCD(b *testing.B)      { benchAlgo(b, convoy.PCCD, 1) }
func BenchmarkAlgoCuTS(b *testing.B)      { benchAlgo(b, convoy.CuTS, 1) }
func BenchmarkAlgoDCM4(b *testing.B)      { benchAlgo(b, convoy.DCM, 4) }
func BenchmarkAlgoSPARE4(b *testing.B)    { benchAlgo(b, convoy.SPARE, 4) }
