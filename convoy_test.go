package convoy

import (
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
)

func scenario() *Dataset {
	return minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 19, Groups: [][]int32{{1, 2, 3}, {7, 8}}},
	})
}

func TestMineDefaultsToK2Hop(t *testing.T) {
	res, err := MineDataset(scenario(), Params{M: 3, K: 8, Eps: minetest.Eps}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != K2Hop || res.K2Hop == nil {
		t.Fatalf("default algorithm should be k2hop: %+v", res)
	}
	want := []Convoy{model.NewConvoy(NewObjSet(1, 2, 3), 0, 19)}
	if !model.ConvoysEqual(res.Convoys, want) {
		t.Fatalf("convoys = %v", res.Convoys)
	}
	if res.PointsProcessed <= 0 || res.Duration <= 0 {
		t.Fatalf("metadata missing: %+v", res)
	}
}

func TestAllAlgorithmsAgreeOnFCScenario(t *testing.T) {
	// On a scenario with no partial-connectivity subtleties, every
	// algorithm (FC and partial miners alike) must find the same convoys.
	ds := scenario()
	p := Params{M: 3, K: 8, Eps: minetest.Eps}
	want := []Convoy{model.NewConvoy(NewObjSet(1, 2, 3), 0, 19)}
	for _, algo := range []Algorithm{K2Hop, VCoDA, VCoDAStar, PCCD, CuTS, DCM, SPARE} {
		res, err := MineDataset(ds, p, &Options{Algorithm: algo, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !model.ConvoysEqual(res.Convoys, want) {
			t.Fatalf("%s: convoys = %v, want %v", algo, res.Convoys, want)
		}
	}
}

func TestK1FallsBackToFullSweep(t *testing.T) {
	res, err := MineDataset(scenario(), Params{M: 2, K: 1, Eps: minetest.Eps}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both groups qualify at K=1.
	if len(res.Convoys) != 2 {
		t.Fatalf("K=1 convoys = %v", res.Convoys)
	}
}

func TestParamValidation(t *testing.T) {
	ds := scenario()
	if _, err := MineDataset(ds, Params{M: 0, K: 5, Eps: 1}, nil); err == nil {
		t.Fatalf("M=0 should fail")
	}
	if _, err := MineDataset(ds, Params{M: 2, K: 0, Eps: 1}, nil); err == nil {
		t.Fatalf("K=0 should fail")
	}
	if _, err := MineDataset(ds, Params{M: 2, K: 5, Eps: -1}, nil); err == nil {
		t.Fatalf("negative Eps should fail")
	}
	if _, err := MineDataset(ds, Params{M: 2, K: 5, Eps: 1}, &Options{Algorithm: "nope"}); err == nil {
		t.Fatalf("unknown algorithm should fail")
	}
}

func TestMultiNodeOptionsWork(t *testing.T) {
	ds := scenario()
	p := Params{M: 3, K: 8, Eps: minetest.Eps}
	for _, algo := range []Algorithm{DCM, SPARE} {
		res, err := MineDataset(ds, p, &Options{Algorithm: algo, Workers: 2, Nodes: 2})
		if err != nil {
			t.Fatalf("%s nodes=2: %v", algo, err)
		}
		if len(res.Convoys) != 1 {
			t.Fatalf("%s nodes=2: %v", algo, res.Convoys)
		}
	}
}

func TestDisableReExtendStillSound(t *testing.T) {
	ds := minetest.Random(7, 10, 18)
	p := Params{M: 3, K: 5, Eps: minetest.Eps}
	res, err := MineDataset(ds, p, &Options{DisableReExtend: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Convoys {
		if !minetest.IsFCConvoy(ds, c, p.M, p.Eps) {
			t.Fatalf("unsound convoy %v", c)
		}
	}
}
