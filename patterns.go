package convoy

import (
	"errors"

	"repro/internal/flock"
	"repro/internal/movingcluster"
)

// This file exposes the movement-pattern extensions of the paper's §7
// ("the k/2-hop technique can be applied to numerous movement pattern
// mining algorithms such as moving clusters and flock patterns"):
// flock mining accelerated by the k/2-hop pipeline, and the classical
// moving-cluster miner (whose identity churn is outside the k/2-hop
// technique's reach — see package movingcluster for why).

// Flock is a mined flock: ≥ m objects within one disk of radius r for ≥ k
// consecutive timestamps. Structurally identical to Convoy.
type Flock = flock.Flock

// FlockParams are the flock parameters (R is the disk radius). Workers
// bounds the k/2-hop pipeline's parallelism like Options.Workers does
// (0 = one worker per core, 1 = sequential; results are identical either
// way) — pin it to 1 when timing the algorithms against each other.
type FlockParams struct {
	M       int
	K       int
	R       float64
	Workers int
}

// MineFlocks mines maximal flocks with the k/2-hop pipeline (benchmark
// points, candidate intersection, hop-window verification, extension). Set
// sweep to use the classical timestamp-sweep baseline instead (always
// sequential).
func MineFlocks(store Store, p FlockParams, sweep bool) ([]Flock, error) {
	if p.Workers < 0 {
		return nil, errors.New("convoy: Workers must be ≥ 0")
	}
	if sweep {
		return flock.Sweep(store, flock.Config{M: p.M, K: p.K, R: p.R})
	}
	out, _, err := flock.MineK2Hop(store, flock.Config{M: p.M, K: p.K, R: p.R, Workers: p.Workers})
	return out, err
}

// MovingCluster is a mined moving cluster: a per-tick cluster sequence with
// bounded membership churn.
type MovingCluster = movingcluster.MovingCluster

// MovingClusterParams are the moving-cluster parameters: DBSCAN (M, Eps)
// per snapshot, minimum consecutive Jaccard overlap Theta, minimum
// lifetime K.
type MovingClusterParams struct {
	M     int
	Eps   float64
	Theta float64
	K     int
}

// MineMovingClusters mines moving clusters with the classical sweep.
func MineMovingClusters(store Store, p MovingClusterParams) ([]MovingCluster, error) {
	return movingcluster.Mine(store, movingcluster.Config{
		M: p.M, Eps: p.Eps, Theta: p.Theta, K: p.K,
	})
}
