// Command experiments regenerates the paper's evaluation tables and
// figures (as text tables; see DESIGN.md §5 for the index).
//
// Usage:
//
//	experiments -list
//	experiments -exp fig7a -scale small
//	experiments -all -scale tiny
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (fig7a..fig8l, table4, table5)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		scale = flag.String("scale", "tiny", "scale: tiny | small | mid")
	)
	flag.Parse()
	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *all:
		if err := experiments.RunAll(experiments.Scale(*scale), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	case *exp != "":
		t, err := experiments.Run(*exp, experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
