// Command experiments regenerates the paper's evaluation tables and
// figures (as text tables; see DESIGN.md §5 for the index).
//
// Usage:
//
//	experiments -list
//	experiments -exp fig7a -scale small
//	experiments -all -scale tiny
//	experiments -compare -dataset T-Drive -algos k2hop,vcoda,spare -workers 4
//
// The -compare mode is the parallel multi-algorithm runner: it mines one
// dataset with every requested algorithm concurrently on a bounded worker
// pool and renders a side-by-side comparison table.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig7a..fig8l, table4, table5, compare)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		scale   = flag.String("scale", "tiny", "scale: tiny | small | mid")
		compare = flag.Bool("compare", false, "run the parallel multi-algorithm comparison")
		dataset = flag.String("dataset", "Trucks", "dataset for -compare: Trucks | T-Drive | Brinkhoff")
		algos   = flag.String("algos", "", "comma-separated algorithms for -compare (default: all)")
		workers = flag.Int("workers", 0, "worker pool size for -compare (0 = one per core)")
	)
	flag.Parse()
	// Exactly one mode may be requested; "-exp compare" is the compare mode
	// spelled through -exp, so it does not conflict with -compare itself.
	modes := 0
	for _, on := range []bool{*list, *all, *compare || *exp == "compare", *exp != "" && *exp != "compare"} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "experiments: -list, -all, -compare and -exp are mutually exclusive; pick one mode")
		os.Exit(2)
	}
	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *compare, *exp == "compare":
		// "-exp compare" honours the -dataset/-algos/-workers flags too;
		// the registry entry (used by -all and the benchmarks) runs the
		// default Trucks × all-algorithms comparison.
		as, err := experiments.ParseAlgorithms(*algos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		t, err := experiments.Compare(experiments.Scale(*scale), *dataset, as, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
	case *all:
		if err := experiments.RunAll(experiments.Scale(*scale), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	case *exp != "":
		t, err := experiments.Run(*exp, experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
