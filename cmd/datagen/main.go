// Command datagen generates a synthetic trajectory dataset and materialises
// it under one of the storage engines.
//
// Usage:
//
//	datagen -data brinkhoff -scale small -format flat -out /tmp/brinkhoff.k2f
//	datagen -data trucks -format lsmt -out /tmp/trucksdb
//	datagen -data tdrive -format rdbms -out /tmp/tdrive.k2r
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/storage/flatfile"
	"repro/internal/storage/lsm"
	"repro/internal/storage/relational"
)

func main() {
	var (
		data   = flag.String("data", "trucks", "dataset: trucks | tdrive | brinkhoff")
		scale  = flag.String("scale", "small", "scale: tiny | small | mid")
		format = flag.String("format", "flat", "output format: flat | rdbms | lsmt | csv")
		out    = flag.String("out", "", "output path (file, or directory for lsmt)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	if err := run(*data, *scale, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(data, scale, format, out string) error {
	var spec experiments.DatasetSpec
	switch data {
	case "trucks":
		spec = experiments.TrucksSpec()
	case "tdrive":
		spec = experiments.TDriveSpec()
	case "brinkhoff":
		spec = experiments.BrinkhoffSpec()
	default:
		return fmt.Errorf("unknown dataset %q", data)
	}
	ds := spec.Build(experiments.Scale(scale))
	st := datagen.Describe(ds)
	fmt.Printf("generated %s/%s: %d points, %d objects, %d timestamps, extent %.0fx%.0f\n",
		data, scale, st.Points, st.Objects, st.Timestamps, st.Width, st.Height)

	switch format {
	case "flat":
		if err := flatfile.WriteDataset(out, ds); err != nil {
			return err
		}
	case "rdbms":
		if err := relational.WriteDataset(out, ds, nil); err != nil {
			return err
		}
	case "lsmt":
		if err := lsm.WriteDataset(out, ds, nil); err != nil {
			return err
		}
	case "csv":
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := model.WriteCSV(f, ds); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	fmt.Printf("wrote %s (%s)\n", out, format)
	return nil
}
