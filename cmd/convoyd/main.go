// Command convoyd serves streaming convoy mining over HTTP: snapshot
// ingest per feed (JSON, or the K2BI binary batch protocol negotiated on
// Content-Type, including a sticky per-connection stream endpoint),
// long-poll queries for closed convoys, an end-of-feed flush returning
// the full maximal result set, and — with -archive-dir — historical
// queries over everything ever persisted. Ingest is guarded by admission
// control: -ingest-rate/-ingest-burst arm a per-feed token bucket and
// -breaker-threshold/-breaker-cooldown a per-shard circuit breaker; all
// rejections answer 429 with Retry-After and a machine-readable code.
// docs/API.md is the complete endpoint reference; see
// docs/ARCHITECTURE.md ("convoyd") for the sharding, reordering and
// archive design.
//
// Example:
//
//	convoyd -addr :8080 -m 3 -k 4 -eps 1.5 -shards 8 -window 4 \
//	        -persist /tmp/closed.k2cl -archive-dir /tmp/convoy-archive \
//	        -feed-ttl 10m
//
// With -persist, the server is restartable: an existing log is replayed at
// startup (recovering per-feed cursor positions and dedup state), a torn
// tail record from a crash is truncated away, and SIGINT/SIGTERM shut down
// gracefully with a final persist of every closed convoy. Memory stays
// bounded by -feed-ttl (idle-feed eviction) and by history truncation:
// convoys already in the log are dropped from memory and queries below the
// truncation point answer 410 Gone (see docs/ARCHITECTURE.md "Memory
// limits").
//
// With -archive-dir, persisted convoys are additionally indexed into an
// LSM-backed archive (backfilled from the log at startup, populated
// asynchronously while serving), and the /v1/query endpoints answer
// time-interval, object-membership and size/duration lookups over the full
// history with cursor pagination. -retention N bounds that history: at
// every archive flush tick, convoys whose End lags the newest archived
// End by N ticks or more are expired from the archive (never from the
// log); POST /v1/admin/retention expires on demand at an absolute tick.
//
//	curl -s -X POST localhost:8080/v1/feeds/osaka/snapshots -d '{
//	  "snapshots": [{"t": 0, "positions": [{"oid": 1, "x": 0, "y": 0}]}]}'
//	curl -s 'localhost:8080/v1/feeds/osaka/convoys?cursor=0&wait=5s'
//	curl -s -X POST localhost:8080/v1/feeds/osaka/flush
//	curl -s 'localhost:8080/v1/query/object?oid=1'
//	curl -s 'localhost:8080/v1/query/time?from=0&to=99&min_size=3'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	convoy "repro"
	"repro/internal/server"
	"repro/internal/storage"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		m            = flag.Int("m", 3, "minimum convoy size (objects)")
		k            = flag.Int("k", 4, "minimum convoy length (ticks)")
		eps          = flag.Float64("eps", 1.5, "clustering radius")
		flockR       = flag.Float64("flock-r", 0, "disk radius for flock-pattern feeds (0 = eps)")
		mcTheta      = flag.Float64("mc-theta", 0, "minimum consecutive Jaccard overlap for moving-cluster feeds (0 = 0.5)")
		shards       = flag.Int("shards", 8, "shard actor count")
		queue        = flag.Int("queue", 128, "per-shard ingest queue capacity (batches)")
		window       = flag.Int("window", 0, "reordering window in ticks (0 = strict in-order)")
		wait         = flag.Duration("enqueue-wait", 250*time.Millisecond, "how long ingest waits for queue space before 429")
		persist      = flag.String("persist", "", "closed-convoy sink path (empty = no persistence); an existing log is replayed at startup")
		persistEvery = flag.Duration("persist-every", 2*time.Second, "persistence interval")
		feedTTL      = flag.Duration("feed-ttl", 0, "evict feeds idle for this long (0 = never); persisted history survives in the log")
		evictEvery   = flag.Duration("evict-every", 0, "eviction sweep interval (default feed-ttl/4)")
		keepHistory  = flag.Bool("keep-history", false, "keep persisted closed-convoy history in memory (grows unbounded; default truncates it once persisted)")
		compactLog   = flag.Bool("compact-log", false, "compact the persist log before serving (drops duplicate records left by post-eviction replays)")
		archiveDir   = flag.String("archive-dir", "", "historical query archive directory (empty = /v1/query disabled); requires -persist, backfilled from the log at startup")
		archiveCache = flag.Int("archive-cache", 0, "archive index write-buffer budget in bytes (0 = default 12 MiB)")
		retention    = flag.Int("retention", 0, "expire archived convoys whose End tick lags the newest archived End by this many ticks or more (0 = keep everything); requires -archive-dir")
		queryBudget  = flag.Int("query-budget", 0, "index entries one /v1/query page may examine before returning a cursor (0 = default 65536)")
		maxFeeds     = flag.Int("max-feeds", 0, "cap on live feeds; creating more answers 429 (0 = default 65536)")
		ingestRate   = flag.Float64("ingest-rate", 0, "per-feed ingest rate limit in snapshots/sec; excess answers 429 rate_limited (0 = unlimited)")
		ingestBurst  = flag.Int("ingest-burst", 0, "per-feed ingest burst capacity in snapshots (0 = default 2×ingest-rate)")
		breakThresh  = flag.Int("breaker-threshold", 0, "consecutive queue-full rejections that open a shard's circuit breaker (0 = breakers disabled)")
		breakCool    = flag.Duration("breaker-cooldown", 0, "how long an open breaker sheds ingest before probing (0 = default 1s)")
	)
	flag.Parse()

	if *archiveDir != "" && *persist == "" {
		fmt.Fprintln(os.Stderr, "convoyd: -archive-dir requires -persist (the log is the archive's source of truth)")
		os.Exit(1)
	}
	if *retention < 0 || int64(*retention) > math.MaxInt32 {
		fmt.Fprintf(os.Stderr, "convoyd: -retention %d out of range [0, %d]\n", *retention, math.MaxInt32)
		os.Exit(1)
	}
	if *retention > 0 && *archiveDir == "" {
		fmt.Fprintln(os.Stderr, "convoyd: -retention requires -archive-dir (retention expires archived convoys)")
		os.Exit(1)
	}
	if *ingestRate < 0 || *ingestBurst < 0 || *breakThresh < 0 || *breakCool < 0 {
		fmt.Fprintln(os.Stderr, "convoyd: -ingest-rate, -ingest-burst, -breaker-threshold and -breaker-cooldown must be >= 0")
		os.Exit(1)
	}
	if *ingestBurst > 0 && *ingestRate == 0 {
		fmt.Fprintln(os.Stderr, "convoyd: -ingest-burst requires -ingest-rate")
		os.Exit(1)
	}
	if *breakCool > 0 && *breakThresh == 0 {
		fmt.Fprintln(os.Stderr, "convoyd: -breaker-cooldown requires -breaker-threshold")
		os.Exit(1)
	}

	if *compactLog {
		if *persist == "" {
			fmt.Fprintln(os.Stderr, "convoyd: -compact-log requires -persist")
			os.Exit(1)
		}
		switch _, err := os.Stat(*persist); {
		case os.IsNotExist(err):
			log.Printf("convoyd: -compact-log: no log at %s yet, nothing to compact", *persist)
		case err != nil:
			fmt.Fprintln(os.Stderr, "convoyd: compact:", err)
			os.Exit(1)
		default:
			kept, dropped, err := storage.CompactConvoyLog(*persist)
			if err != nil {
				fmt.Fprintln(os.Stderr, "convoyd: compact:", err)
				os.Exit(1)
			}
			log.Printf("convoyd: compacted %s: kept %d records, dropped %d duplicates", *persist, kept, dropped)
		}
	}

	srv, err := server.New(server.Config{
		Params:       convoy.Params{M: *m, K: *k, Eps: *eps},
		FlockR:       *flockR,
		MCTheta:      *mcTheta,
		Shards:       *shards,
		QueueLen:     *queue,
		Window:       int32(*window),
		EnqueueWait:  *wait,
		PersistPath:  *persist,
		PersistEvery: *persistEvery,
		FeedTTL:      *feedTTL,
		EvictEvery:   *evictEvery,
		KeepHistory:  *keepHistory,
		ArchiveDir:   *archiveDir,
		ArchiveCache: *archiveCache,
		Retention:    int32(*retention),
		QueryBudget:  *queryBudget,
		MaxFeeds:     *maxFeeds,

		IngestRate:       *ingestRate,
		IngestBurst:      *ingestBurst,
		BreakerThreshold: *breakThresh,
		BreakerCooldown:  *breakCool,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "convoyd:", err)
		os.Exit(1)
	}
	if feeds, records := srv.RecoveryInfo(); feeds > 0 {
		log.Printf("convoyd: recovered %d feeds (%d persisted convoys) from %s", feeds, records, *persist)
	}
	if backfilled, rebuilt, enabled := srv.ArchiveInfo(); enabled {
		switch {
		case rebuilt:
			log.Printf("convoyd: archive %s had diverged from the log; rebuilt with %d records", *archiveDir, backfilled)
		case backfilled > 0:
			log.Printf("convoyd: archive %s backfilled %d records from %s", *archiveDir, backfilled, *persist)
		default:
			log.Printf("convoyd: archive %s up to date", *archiveDir)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("convoyd: listening on %s (m=%d k=%d eps=%g shards=%d window=%d)",
		*addr, *m, *k, *eps, *shards, *window)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "convoyd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain, strictly ordered: Shutdown runs synchronously so
	// every in-flight request (including long-polls) finishes before
	// srv.Close() closes the shard queues and writes the final persist —
	// otherwise a request accepted before the signal could see 503 from a
	// server that promised to drain it.
	log.Println("convoyd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Println("convoyd: shutdown timeout, closing anyway:", err)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "convoyd: close:", err)
		os.Exit(1)
	}
}
