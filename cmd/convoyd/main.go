// Command convoyd serves streaming convoy mining over HTTP: JSON snapshot
// ingest per feed, long-poll queries for closed convoys, and an end-of-feed
// flush returning the full maximal result set. See docs/ARCHITECTURE.md
// ("convoyd") for the sharding and reordering design.
//
// Example:
//
//	convoyd -addr :8080 -m 3 -k 4 -eps 1.5 -shards 8 -window 4 \
//	        -persist /tmp/closed.k2cl
//
//	curl -s -X POST localhost:8080/v1/feeds/osaka/snapshots -d '{
//	  "snapshots": [{"t": 0, "positions": [{"oid": 1, "x": 0, "y": 0}]}]}'
//	curl -s 'localhost:8080/v1/feeds/osaka/convoys?cursor=0&wait=5s'
//	curl -s -X POST localhost:8080/v1/feeds/osaka/flush
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	convoy "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		m            = flag.Int("m", 3, "minimum convoy size (objects)")
		k            = flag.Int("k", 4, "minimum convoy length (ticks)")
		eps          = flag.Float64("eps", 1.5, "clustering radius")
		shards       = flag.Int("shards", 8, "shard actor count")
		queue        = flag.Int("queue", 128, "per-shard ingest queue capacity (batches)")
		window       = flag.Int("window", 0, "reordering window in ticks (0 = strict in-order)")
		wait         = flag.Duration("enqueue-wait", 250*time.Millisecond, "how long ingest waits for queue space before 429")
		persist      = flag.String("persist", "", "closed-convoy sink path (empty = no persistence)")
		persistEvery = flag.Duration("persist-every", 2*time.Second, "persistence interval")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		Params:       convoy.Params{M: *m, K: *k, Eps: *eps},
		Shards:       *shards,
		QueueLen:     *queue,
		Window:       int32(*window),
		EnqueueWait:  *wait,
		PersistPath:  *persist,
		PersistEvery: *persistEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "convoyd:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Println("convoyd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("convoyd: listening on %s (m=%d k=%d eps=%g shards=%d window=%d)",
		*addr, *m, *k, *eps, *shards, *window)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "convoyd:", err)
		os.Exit(1)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "convoyd: close:", err)
		os.Exit(1)
	}
}
