// Command convoymine mines convoy patterns from a dataset with a chosen
// algorithm and storage engine, printing the convoys and run statistics.
//
// Usage:
//
//	convoymine -data trucks -algo k2hop -store rdbms -m 3 -k 40 -eps 40
//	convoymine -data tdrive -algo vcoda* -scale small -v
//	convoymine -file path/to/data.k2f -algo k2hop -m 3 -k 100 -eps 50
//
// With -file the dataset is read from a flat file written by the datagen
// tool; otherwise one of the built-in generators is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	convoy "repro"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/storage/flatfile"
)

func main() {
	var (
		data    = flag.String("data", "trucks", "dataset: trucks | tdrive | brinkhoff")
		file    = flag.String("file", "", "read dataset from a flat file instead of generating")
		scale   = flag.String("scale", "tiny", "dataset scale: tiny | small | mid")
		algo    = flag.String("algo", "k2hop", "algorithm: k2hop | vcoda | vcoda* | pccd | cuts | dcm | spare")
		store   = flag.String("store", "mem", "storage engine: mem | file | rdbms | lsmt")
		m       = flag.Int("m", 3, "minimum convoy size")
		k       = flag.Int("k", 0, "minimum convoy length (0 = dataset default)")
		eps     = flag.Float64("eps", 0, "density radius (0 = dataset default)")
		workers = flag.Int("workers", 0, "worker pool size: k/2-hop phases and dcm/spare task slots (0 = one per core)")
		nodes   = flag.Int("nodes", 1, "simulated nodes for dcm/spare")
		verbose = flag.Bool("v", false, "print every convoy")
	)
	flag.Parse()
	if *workers == 0 {
		// Resolve the per-core default here: the experiments runners pin an
		// unset Workers to 1 (sequential paper setups), so the CLI states
		// its intent explicitly.
		*workers = runtime.GOMAXPROCS(0)
	}
	if err := run(*data, *file, *scale, *algo, *store, *m, *k, *eps, *workers, *nodes, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "convoymine:", err)
		os.Exit(1)
	}
}

func run(data, file, scale, algo, store string, m, k int, eps float64, workers, nodes int, verbose bool) error {
	var (
		ds   *model.Dataset
		spec experiments.DatasetSpec
	)
	switch {
	case file != "":
		var err error
		ds, err = loadFile(file)
		if err != nil {
			return err
		}
		spec = experiments.TrucksSpec() // defaults only used when k/eps are 0
	case data == "trucks":
		spec = experiments.TrucksSpec()
	case data == "tdrive":
		spec = experiments.TDriveSpec()
	case data == "brinkhoff":
		spec = experiments.BrinkhoffSpec()
	default:
		return fmt.Errorf("unknown dataset %q", data)
	}
	if ds == nil {
		ds = spec.Build(experiments.Scale(scale))
	}
	if eps == 0 {
		eps = spec.Eps
	}
	if k == 0 {
		k = spec.KMid(ds)
	}
	params := convoy.Params{M: m, K: k, Eps: eps}
	opts := &convoy.Options{Algorithm: convoy.Algorithm(algo), Workers: workers, Nodes: nodes}

	ts, te := ds.TimeRange()
	fmt.Printf("dataset: %d points, %d objects, t=[%d,%d]\n",
		ds.NumPoints(), len(ds.Objects()), ts, te)
	fmt.Printf("mining: algo=%s store=%s m=%d k=%d eps=%g\n", algo, store, m, k, eps)

	var res *experiments.MineResult
	var err error
	if store == "mem" {
		res, err = experiments.MineMem(ds, params, opts)
	} else {
		kind := map[string]experiments.StoreKind{
			"file": experiments.StoreFile, "rdbms": experiments.StoreRDBMS, "lsmt": experiments.StoreLSMT,
		}[store]
		if kind == "" {
			return fmt.Errorf("unknown store %q", store)
		}
		res, err = experiments.MineOn(kind, ds, params, opts)
	}
	if err != nil {
		return err
	}

	fmt.Printf("found %d convoys in %s (%d points read, %.1f%% of dataset)\n",
		len(res.Convoys), res.Duration, res.Points,
		100*float64(res.Points)/float64(ds.NumPoints()))
	if res.Report != nil {
		r := res.Report
		fmt.Printf("phases: benchmark=%s candidates=%s hwmt=%s merge=%s extR=%s extL=%s validate=%s\n",
			r.BenchmarkTime, r.CandidateTime, r.HWMTTime, r.MergeTime,
			r.ExtendRight, r.ExtendLeft, r.ValidateTime)
		fmt.Printf("pool: workers=%d cpu: benchmark=%s hwmt=%s extR=%s extL=%s\n",
			r.Workers, r.BenchmarkCPU, r.HWMTCPU, r.ExtendRightCPU, r.ExtendLeftCPU)
	}
	if verbose {
		for _, c := range res.Convoys {
			fmt.Printf("  %d objects %v over [%d,%d] (%d ticks)\n",
				c.Size(), c.Objs, c.Start, c.End, c.Len())
		}
	}
	return nil
}

// loadFile reads a dataset from a flat file or, when the path ends in
// .csv, from CSV in the paper's <oid, x, y, t> column order.
func loadFile(path string) (*model.Dataset, error) {
	if strings.HasSuffix(path, ".csv") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pts, err := model.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		return model.NewDataset(pts), nil
	}
	fs, err := flatfile.Open(path)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	return fs.Load()
}
