package main

import (
	"testing"

	convoy "repro"
)

func TestParseMix(t *testing.T) {
	cycle, err := parseMix("convoy=2,flock=1,mc=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []convoy.Pattern{convoy.PatternConvoy, convoy.PatternConvoy, convoy.PatternFlock, convoy.PatternMC}
	if len(cycle) != len(want) {
		t.Fatalf("cycle %v, want %v", cycle, want)
	}
	for i := range want {
		if cycle[i] != want[i] {
			t.Fatalf("cycle %v, want %v", cycle, want)
		}
	}
	if _, err := parseMix("swarm=1"); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	if _, err := parseMix("convoy=0"); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func TestParseFlagsValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-ooo", "0.5", "-window", "0"}); err == nil {
		t.Fatal("-ooo without a reorder window accepted")
	}
	if _, err := parseFlags([]string{"-burst", "sine"}); err == nil {
		t.Fatal("unknown burst profile accepted")
	}
}

func TestSummarize(t *testing.T) {
	q := summarize([]float64{40, 10, 30, 20})
	if q.Count != 4 || q.P50 != 20 || q.Max != 40 {
		t.Fatalf("quantiles %+v", q)
	}
	if z := summarize(nil); z.Count != 0 || z.Max != 0 {
		t.Fatalf("empty quantiles %+v", z)
	}
}

// TestLoadgenSmoke runs the full pipeline at miniature scale against an
// in-process server: all three pattern families, out-of-order injection,
// square-wave bursts — the artifact must come back with ingest and
// close-lag samples, correct per-pattern feed counts, and closed patterns
// in every family.
func TestLoadgenSmoke(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-feeds", "3", "-objects", "30", "-ticks", "40", "-batch", "6",
		"-pattern-mix", "convoy=1,flock=1,mc=1", "-ooo", "0.25", "-window", "2",
		"-rate", "200", "-burst", "square", "-burst-period", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	art, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := art.Loadgen
	if rep.Ingest.Count == 0 || rep.Ingest.P50 <= 0 || rep.Ingest.P99 < rep.Ingest.P50 {
		t.Fatalf("ingest quantiles: %+v", rep.Ingest)
	}
	if rep.ConvoysClosed == 0 || rep.CloseLag.Count == 0 {
		t.Fatalf("no close-lag samples: closed=%d lag=%+v", rep.ConvoysClosed, rep.CloseLag)
	}
	if rep.TicksSent != 3*40 {
		t.Fatalf("ticks_sent = %d, want %d", rep.TicksSent, 3*40)
	}
	if rep.PointsSent == 0 {
		t.Fatal("no points sent")
	}
	for _, pat := range []string{"convoy", "flock", "mc"} {
		pc, ok := rep.Patterns[pat]
		if !ok || pc.LiveFeeds != 1 {
			t.Fatalf("pattern %s: %+v (patterns: %+v)", pat, pc, rep.Patterns)
		}
		if pc.ClosedTotal == 0 {
			t.Fatalf("pattern %s closed nothing — load data too sparse", pat)
		}
	}
	if rep.PeakRSSBytes == 0 {
		t.Log("peak_rss_bytes unavailable (no /proc)") // best-effort field
	}
	if rep.WallNs <= 0 {
		t.Fatalf("wall_ns = %d", rep.WallNs)
	}
}
