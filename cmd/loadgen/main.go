// Command loadgen drives convoyd over the K2BI binary ingest path with
// Brinkhoff-generated city traffic and emits an SLO artifact (LOAD_N.json)
// in the shape scripts/benchjson renders and compares:
//
//	loadgen -feeds 4 -objects 60 -ticks 80 -o LOAD_6.json
//	go run ./scripts/benchjson -md LOAD_6.json
//
// By default an in-process convoyd serves the run (so one command measures
// the whole path with zero setup); -addr points at an already-running
// server instead. Each feed negotiates its pattern family on first ingest
// (-pattern-mix weights convoy/flock/mc), streams its road-network traffic
// in K2BI batches — optionally out of order within the reorder window
// (-ooo), rate-limited (-rate) or in square-wave bursts (-burst square) —
// and is flushed at the end. Concurrent long-pollers timestamp every
// closed pattern as it becomes observable.
//
// With -query-rate N the run also hammers the historical query endpoints
// (GET /v1/query/*, rotating the three shapes) at N requests/sec while
// ingest is running — the mixed read/write workload the archive's
// lock-free read path exists for. The in-process server then gets a
// temp-dir archive; a remote -addr server must have one configured.
//
// The artifact records ingest latency quantiles (p50/p90/p99/max over
// accepted requests), pattern-close lag quantiles (time from accepting the
// batch that made a pattern closable — its gap tick, or the flush — to the
// pattern arriving on a poll), query latency quantiles and the archive
// block-cache hit rate (with -query-rate), 429 shed/retry counts, peak RSS
// (VmHWM; the whole process, i.e. client+server in the default in-process
// mode), and the server's per-pattern /v1/stats counters.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	convoy "repro"
	"repro/internal/datagen/brinkhoff"
	"repro/internal/server"
	"repro/internal/storage"
)

type config struct {
	addr        string
	out         string
	feeds       int
	objects     int
	objPerTick  int
	ticks       int
	mix         string
	batch       int
	ooo         float64
	window      int
	rate        float64
	burst       string
	burstPeriod int
	seed        int64
	m, k        int
	eps         float64
	shards      int
	queue       int
	queryRate   float64
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "", "base URL of a running convoyd (empty = serve in-process)")
	fs.StringVar(&cfg.out, "o", "", "write the JSON artifact to this file (default stdout)")
	fs.IntVar(&cfg.feeds, "feeds", 4, "concurrent feeds")
	fs.IntVar(&cfg.objects, "objects", 60, "initial objects per feed (Brinkhoff ObjBegin)")
	fs.IntVar(&cfg.objPerTick, "obj-tick", 2, "objects spawned per tick per feed (churn; arrivals retire)")
	fs.IntVar(&cfg.ticks, "ticks", 80, "ticks per feed")
	fs.StringVar(&cfg.mix, "pattern-mix", "convoy=2,flock=1,mc=1", "feed pattern weights, e.g. convoy=2,flock=1,mc=1")
	fs.IntVar(&cfg.batch, "batch", 8, "ticks per ingest request")
	fs.Float64Var(&cfg.ooo, "ooo", 0, "fraction of adjacent ticks swapped inside each batch (needs -window >= 1)")
	fs.IntVar(&cfg.window, "window", 4, "reorder window in ticks (in-process server; a remote -addr server must match)")
	fs.Float64Var(&cfg.rate, "rate", 0, "batches/sec per feed (0 = unthrottled)")
	fs.StringVar(&cfg.burst, "burst", "none", "arrival profile at -rate: none (uniform) or square (full-speed bursts, then idle)")
	fs.IntVar(&cfg.burstPeriod, "burst-period", 4, "batches per square-wave burst")
	fs.Int64Var(&cfg.seed, "seed", 1, "base RNG seed (feed i uses seed+i)")
	fs.IntVar(&cfg.m, "m", 3, "minimum pattern size (in-process server)")
	fs.IntVar(&cfg.k, "k", 3, "minimum pattern length (in-process server)")
	fs.Float64Var(&cfg.eps, "eps", 40, "clustering radius (in-process server; Brinkhoff space is 2000x2000)")
	fs.IntVar(&cfg.shards, "shards", 4, "shard actors (in-process server)")
	fs.IntVar(&cfg.queue, "queue", 64, "per-shard queue capacity (in-process server)")
	fs.Float64Var(&cfg.queryRate, "query-rate", 0, "GET /v1/query/* requests/sec during ingest (0 = none; in-process server gets a temp-dir archive)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.queryRate < 0 {
		return cfg, errors.New("loadgen: -query-rate must be >= 0")
	}
	if cfg.feeds < 1 || cfg.ticks < 1 || cfg.batch < 1 || cfg.objects < 0 || cfg.objPerTick < 0 {
		return cfg, errors.New("loadgen: -feeds, -ticks and -batch must be >= 1; -objects and -obj-tick >= 0")
	}
	if cfg.ooo < 0 || cfg.ooo > 1 {
		return cfg, errors.New("loadgen: -ooo must be in [0, 1]")
	}
	if cfg.ooo > 0 && cfg.window < 1 {
		return cfg, errors.New("loadgen: -ooo needs -window >= 1 or the server drops the displaced ticks as late")
	}
	if cfg.burst != "none" && cfg.burst != "square" {
		return cfg, fmt.Errorf("loadgen: unknown -burst profile %q (none or square)", cfg.burst)
	}
	if cfg.burstPeriod < 1 {
		return cfg, errors.New("loadgen: -burst-period must be >= 1")
	}
	return cfg, nil
}

// parseMix expands "convoy=2,flock=1,mc=1" into the weighted round-robin
// cycle feeds are assigned from.
func parseMix(mix string) ([]convoy.Pattern, error) {
	var cycle []convoy.Pattern
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, ok := strings.Cut(part, "=")
		w := 1
		if ok {
			var err error
			if w, err = strconv.Atoi(ws); err != nil || w < 0 {
				return nil, fmt.Errorf("loadgen: bad weight in -pattern-mix entry %q", part)
			}
		}
		pat, err := convoy.ParsePattern(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("loadgen: -pattern-mix: %v", err)
		}
		for i := 0; i < w; i++ {
			cycle = append(cycle, pat)
		}
	}
	if len(cycle) == 0 {
		return nil, errors.New("loadgen: -pattern-mix selects no patterns")
	}
	return cycle, nil
}

// quantiles summarises a latency sample set in nanoseconds.
type quantiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func summarize(ns []float64) quantiles {
	if len(ns) == 0 {
		return quantiles{}
	}
	sort.Float64s(ns)
	at := func(q float64) float64 { return ns[int(q*float64(len(ns)-1))] }
	return quantiles{
		Count: len(ns),
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   ns[len(ns)-1],
	}
}

type shedCounts struct {
	HTTP429 int64 `json:"http_429"`
	Retries int64 `json:"retries"`
}

type patternCount struct {
	LiveFeeds   int   `json:"live_feeds"`
	ClosedTotal int64 `json:"closed_total"`
}

// report is the "loadgen" object of the artifact.
type report struct {
	Config     config         `json:"-"`
	ConfigJSON map[string]any `json:"config"`
	WallNs     int64          `json:"wall_ns"`
	Ingest     quantiles      `json:"ingest_ns"`
	CloseLag   quantiles      `json:"close_lag_ns"`
	// Query summarises the GET /v1/query/* latencies of a -query-rate run,
	// and QueryCacheHitRate the archive block cache's hits/(hits+misses)
	// over the same window; both are zero without -query-rate.
	Query             quantiles               `json:"query_ns"`
	QueryCacheHitRate float64                 `json:"query_cache_hit_rate,omitempty"`
	Shed              shedCounts              `json:"shed"`
	PeakRSSBytes      int64                   `json:"peak_rss_bytes"`
	TicksSent         int64                   `json:"ticks_sent"`
	PointsSent        int64                   `json:"points_sent"`
	ConvoysClosed     int64                   `json:"convoys_closed"`
	Patterns          map[string]patternCount `json:"patterns"`
}

// artifact is the document benchjson understands: the same env header as a
// BENCH_N.json plus the load report under "loadgen".
type artifact struct {
	GOOS    string `json:"goos,omitempty"`
	GOARCH  string `json:"goarch,omitempty"`
	Loadgen report `json:"loadgen"`
}

// metrics aggregates measurements across all feed workers, pollers and
// query hammers.
type metrics struct {
	mu       sync.Mutex
	ingestNs []float64
	lagNs    []float64
	queryNs  []float64
	shed     shedCounts
	ticks    int64
	points   int64
	convoys  int64
}

// accepted is one accepted ingest request from a feed's timeline: the
// highest tick the server has accepted so far and when it said 202. A
// pattern ending at E becomes closable the moment maxTick exceeds E (the
// gap evidence) — or at flush.
type accepted struct {
	maxTick int32
	at      time.Time
}

// feedRun is one feed's drive state shared between its worker and poller.
type feedRun struct {
	name string
	pat  convoy.Pattern

	mu       sync.Mutex
	accepts  []accepted
	flushAt  time.Time // zero until the flush request is issued
	sendDone bool
}

// evidenceAt returns when the batch proving a pattern with End=end closable
// was accepted (the first accept whose maxTick passes end), falling back to
// the flush time for flush-closed patterns, or zero if unknown.
func (fr *feedRun) evidenceAt(end int32) time.Time {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	i := sort.Search(len(fr.accepts), func(i int) bool { return fr.accepts[i].maxTick > end })
	if i < len(fr.accepts) {
		return fr.accepts[i].at
	}
	return fr.flushAt
}

// convoysResponse mirrors the server's GET /convoys JSON (the fields the
// poller needs).
type convoysResponse struct {
	Pattern string `json:"pattern"`
	Cursor  int    `json:"cursor"`
	Convoys []struct {
		End int32 `json:"end"`
	} `json:"convoys"`
	Flushed bool `json:"flushed"`
}

// statsResponse mirrors the sections of GET /v1/stats loadgen consumes.
type statsResponse struct {
	Patterns map[string]patternCount `json:"patterns"`
	Archive  *struct {
		BlockCacheHits   int64 `json:"block_cache_hits_total"`
		BlockCacheMisses int64 `json:"block_cache_misses_total"`
	} `json:"archive"`
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	art, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if cfg.out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(cfg config) (*artifact, error) {
	cycle, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	base := strings.TrimRight(cfg.addr, "/")
	var shutdown func() error
	if base == "" {
		base, shutdown, err = startInProcess(cfg)
		if err != nil {
			return nil, err
		}
		defer shutdown()
	}

	client := &http.Client{}
	mets := &metrics{}
	runs := make([]*feedRun, cfg.feeds)
	for i := range runs {
		runs[i] = &feedRun{name: fmt.Sprintf("load-%d", i), pat: cycle[i%len(cycle)]}
	}

	start := time.Now()
	errs := make(chan error, 2*cfg.feeds+1)
	var wg sync.WaitGroup
	stopQueries := make(chan struct{})
	var queryWg sync.WaitGroup
	if cfg.queryRate > 0 {
		queryWg.Add(1)
		go func() {
			defer queryWg.Done()
			errs <- hammerQueries(client, base, cfg, stopQueries, mets)
		}()
	}
	for i, fr := range runs {
		wg.Add(2)
		go func(i int, fr *feedRun) {
			defer wg.Done()
			errs <- driveFeed(client, base, cfg, int64(i), fr, mets)
		}(i, fr)
		go func(fr *feedRun) {
			defer wg.Done()
			errs <- pollFeed(client, base, fr, mets)
		}(fr)
	}
	wg.Wait()
	close(stopQueries)
	queryWg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	wall := time.Since(start)

	stats, err := fetchStats(client, base)
	if err != nil {
		return nil, err
	}
	rep := report{
		Config: cfg,
		ConfigJSON: map[string]any{
			"feeds": cfg.feeds, "objects": cfg.objects, "obj_tick": cfg.objPerTick,
			"ticks": cfg.ticks, "pattern_mix": cfg.mix, "batch": cfg.batch,
			"ooo": cfg.ooo, "window": cfg.window, "rate": cfg.rate,
			"burst": cfg.burst, "seed": cfg.seed, "query_rate": cfg.queryRate,
			"m": cfg.m, "k": cfg.k, "eps": cfg.eps, "shards": cfg.shards,
			"in_process": cfg.addr == "",
		},
		WallNs:        wall.Nanoseconds(),
		Ingest:        summarize(mets.ingestNs),
		CloseLag:      summarize(mets.lagNs),
		Query:         summarize(mets.queryNs),
		Shed:          mets.shed,
		PeakRSSBytes:  peakRSS(),
		TicksSent:     mets.ticks,
		PointsSent:    mets.points,
		ConvoysClosed: mets.convoys,
		Patterns:      stats.Patterns,
	}
	if a := stats.Archive; a != nil && a.BlockCacheHits+a.BlockCacheMisses > 0 {
		rep.QueryCacheHitRate = float64(a.BlockCacheHits) /
			float64(a.BlockCacheHits+a.BlockCacheMisses)
	}
	return &artifact{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Loadgen: rep}, nil
}

// startInProcess serves convoyd on a loopback port inside this process.
// With -query-rate the server also gets a throwaway archive (the query
// endpoints need one), persisted aggressively so queries have data to hit
// while ingest is still running.
func startInProcess(cfg config) (string, func() error, error) {
	scfg := server.Config{
		Params:   convoy.Params{M: cfg.m, K: cfg.k, Eps: cfg.eps},
		Shards:   cfg.shards,
		QueueLen: cfg.queue,
		Window:   int32(cfg.window),
	}
	cleanup := func() {}
	if cfg.queryRate > 0 {
		dir, err := os.MkdirTemp("", "loadgen-archive-")
		if err != nil {
			return "", nil, err
		}
		scfg.PersistPath = filepath.Join(dir, "closed.k2cl")
		scfg.ArchiveDir = filepath.Join(dir, "archive")
		scfg.PersistEvery = 25 * time.Millisecond
		cleanup = func() { os.RemoveAll(dir) }
	}
	srv, err := server.New(scfg)
	if err != nil {
		cleanup()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		cleanup()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	shutdown := func() error {
		hs.Close()
		err := srv.Close()
		cleanup()
		return err
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// hammerQueries issues GET /v1/query/* requests at cfg.queryRate per
// second, rotating the three query shapes, until stop closes. Successful
// page latencies feed the metrics; any non-200 fails the run (a remote
// -addr server must have an archive configured).
func hammerQueries(client *http.Client, base string, cfg config, stop <-chan struct{}, mets *metrics) error {
	urls := []string{
		fmt.Sprintf("%s/v1/query/time?from=0&to=%d", base, cfg.ticks),
		base + "/v1/query/object?oid=1",
		base + "/v1/query/convoys?min_size=2",
	}
	per := time.Duration(float64(time.Second) / cfg.queryRate)
	for i := 0; ; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		begin := time.Now()
		resp, err := client.Get(urls[i%len(urls)])
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("query status %d (is an archive configured on the -addr server?)", resp.StatusCode)
		}
		took := time.Since(begin)
		mets.mu.Lock()
		mets.queryNs = append(mets.queryNs, float64(took.Nanoseconds()))
		mets.mu.Unlock()
		if d := per - took; d > 0 {
			time.Sleep(d)
		}
	}
}

// driveFeed generates one feed's Brinkhoff traffic and streams it in K2BI
// batches, then flushes. Accepted-request latencies, shed counts and the
// accept timeline feed the metrics.
func driveFeed(client *http.Client, base string, cfg config, idx int64, fr *feedRun, mets *metrics) error {
	ds := brinkhoff.Generate(brinkhoff.Params{
		Seed: cfg.seed + idx, GridW: 8, GridH: 8, SpaceW: 2000, SpaceH: 2000,
		MaxTime: int32(cfg.ticks), ObjBegin: cfg.objects, ObjPerTick: cfg.objPerTick,
		Classes: 3, PlatoonFraction: 0.5, PlatoonSize: 4, PlatoonSpread: 20, Jitter: 10,
	})
	rng := rand.New(rand.NewSource(cfg.seed ^ (idx << 32)))
	ts, te := ds.TimeRange()
	var ticks []int32
	for tt := ts; tt <= te; tt++ {
		ticks = append(ticks, tt)
	}

	url := base + "/v1/feeds/" + fr.name + "/snapshots?pattern=" + string(fr.pat)
	per := time.Duration(0)
	if cfg.rate > 0 {
		per = time.Duration(float64(time.Second) / cfg.rate)
	}
	for off, batchIdx := 0, 0; off < len(ticks); off, batchIdx = off+cfg.batch, batchIdx+1 {
		chunk := ticks[off:min(off+cfg.batch, len(ticks))]
		order := append([]int32(nil), chunk...)
		// Out-of-order injection: swap adjacent ticks (displacement 1, so
		// any window >= 1 reorders them back losslessly).
		for i := 0; i+1 < len(order); i += 2 {
			if rng.Float64() < cfg.ooo {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
		var body []byte
		var nPoints int64
		var err error
		for _, tt := range order {
			pos := ds.Snapshot(tt)
			nPoints += int64(len(pos))
			if body, err = storage.AppendBatchFrame(body, tt, pos); err != nil {
				return err
			}
		}
		if err := postAccepted(client, url, body, mets); err != nil {
			return fmt.Errorf("feed %s: %w", fr.name, err)
		}
		fr.mu.Lock()
		fr.accepts = append(fr.accepts, accepted{maxTick: chunk[len(chunk)-1], at: time.Now()})
		fr.mu.Unlock()
		mets.mu.Lock()
		mets.ticks += int64(len(chunk))
		mets.points += nPoints
		mets.mu.Unlock()

		if per > 0 {
			if cfg.burst == "square" {
				if (batchIdx+1)%cfg.burstPeriod == 0 {
					time.Sleep(time.Duration(cfg.burstPeriod) * per)
				}
			} else {
				time.Sleep(per)
			}
		}
	}

	fr.mu.Lock()
	fr.flushAt = time.Now()
	fr.sendDone = true
	fr.mu.Unlock()
	resp, err := client.Post(base+"/v1/feeds/"+fr.name+"/flush", "application/json", nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("feed %s: flush status %d", fr.name, resp.StatusCode)
	}
	return nil
}

// postAccepted sends one K2BI batch, retrying 429 shed responses with the
// server's Retry-After hint, and records the accepted request's latency.
func postAccepted(client *http.Client, url string, body []byte, mets *metrics) error {
	for {
		begin := time.Now()
		resp, err := client.Post(url, "application/x-k2bi", bytes.NewReader(body))
		if err != nil {
			return err
		}
		took := time.Since(begin)
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			mets.mu.Lock()
			mets.ingestNs = append(mets.ingestNs, float64(took.Nanoseconds()))
			mets.mu.Unlock()
			return nil
		case http.StatusTooManyRequests:
			backoff := 25 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				backoff = time.Duration(ra) * time.Second
			}
			mets.mu.Lock()
			mets.shed.HTTP429++
			mets.shed.Retries++
			mets.mu.Unlock()
			time.Sleep(backoff)
		default:
			return fmt.Errorf("ingest status %d: %s", resp.StatusCode, payload)
		}
	}
}

// pollFeed long-polls one feed's closed patterns, timestamping each arrival
// against the accept timeline to measure close lag. It exits when the flush
// state becomes observable.
func pollFeed(client *http.Client, base string, fr *feedRun, mets *metrics) error {
	cursor := 0
	for {
		resp, err := client.Get(fmt.Sprintf("%s/v1/feeds/%s/convoys?cursor=%d&wait=2s", base, fr.name, cursor))
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			// The worker has not created the feed yet.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusGone {
			// A persisting server (always the case with -query-rate)
			// truncates published history once it reaches the log; a poller
			// that falls behind restarts from the feed's truncated_before,
			// as the cursor contract prescribes. The skipped convoys are in
			// the log/archive — only their close-lag samples are lost.
			tb, err := truncatedBefore(client, base, fr.name)
			if err != nil {
				return fmt.Errorf("feed %s: 410 recovery: %w", fr.name, err)
			}
			if tb <= cursor {
				return fmt.Errorf("feed %s: poll status 410 outside truncation (domain start %d): %s", fr.name, tb, data)
			}
			cursor = tb
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("feed %s: poll status %d: %s", fr.name, resp.StatusCode, data)
		}
		now := time.Now()
		var cr convoysResponse
		if err := json.Unmarshal(data, &cr); err != nil {
			return fmt.Errorf("feed %s: poll body: %w", fr.name, err)
		}
		for _, c := range cr.Convoys {
			if at := fr.evidenceAt(c.End); !at.IsZero() {
				mets.mu.Lock()
				mets.lagNs = append(mets.lagNs, float64(now.Sub(at).Nanoseconds()))
				mets.mu.Unlock()
			}
		}
		mets.mu.Lock()
		mets.convoys += int64(len(cr.Convoys))
		mets.mu.Unlock()
		cursor = cr.Cursor
		if cr.Flushed {
			return nil
		}
	}
}

// truncatedBefore reads one feed's live-cursor-domain lower bound from
// /v1/stats (the machine-readable form of the 410 error's prose).
func truncatedBefore(client *http.Client, base, feed string) (int, error) {
	var st struct {
		Feeds map[string]struct {
			TruncatedBefore int `json:"truncated_before"`
		} `json:"feeds"`
	}
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	f, ok := st.Feeds[feed]
	if !ok {
		return 0, fmt.Errorf("feed %s missing from stats", feed)
	}
	return f.TruncatedBefore, nil
}

func fetchStats(client *http.Client, base string) (statsResponse, error) {
	var st statsResponse
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// peakRSS reads the process high-water RSS from /proc (0 where /proc is
// unavailable — the artifact field is best-effort off Linux).
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fs := strings.Fields(rest)
			if len(fs) >= 1 {
				kb, err := strconv.ParseInt(fs[0], 10, 64)
				if err == nil {
					return kb * 1024
				}
			}
		}
	}
	return 0
}
