// Command mdlinks checks the internal links of markdown files so the
// cross-references between README.md, docs/API.md and docs/ARCHITECTURE.md
// cannot rot: every relative link must point at a file that exists, and
// every fragment (`file.md#section`, or `#section` within a file) must
// match a heading in the target file, using GitHub's anchor slug rules.
// External links (http/https/mailto) are deliberately not fetched — CI
// must not depend on the network — and links inside fenced code blocks are
// ignored.
//
//	go run ./scripts/mdlinks README.md docs/*.md
//
// Exit status 1 lists every broken link with its file and line.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links [text](target). Images and
// reference-style links are rare enough here not to be modelled.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings; the anchor is derived from the text.
var headingRe = regexp.MustCompile("^#{1,6}\\s+(.*?)\\s*#*\\s*$")

// slug reproduces GitHub's heading→anchor rule: lowercase, drop anything
// that is not a letter, digit, space, hyphen or underscore, then turn
// spaces into hyphens. Formatting markers (backticks, stars) are dropped
// by the filter.
func slug(heading string) string {
	heading = strings.ToLower(heading)
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_':
			b.WriteRune(r)
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r)):
			// Non-ASCII letters survive slugging; punctuation (em-dashes
			// and friends) is dropped like its ASCII counterparts.
			b.WriteRune(r)
		}
	}
	return b.String()
}

// anchorsOf collects the heading anchors of a markdown file, numbering
// duplicates the way GitHub does (x, x-1, x-2, …).
func anchorsOf(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		s := slug(m[1])
		if n := counts[s]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", s, n)] = true
		} else {
			anchors[s] = true
		}
		counts[s]++
	}
	return anchors, nil
}

// checkFile returns a message per broken link in the markdown file.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	inFence := false
	for lineNo, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkLink(path, target); msg != "" {
				broken = append(broken, fmt.Sprintf("%s:%d: [%s] %s", path, lineNo+1, target, msg))
			}
		}
	}
	return broken, nil
}

// checkLink validates one link target relative to the file it appears in.
// The empty return means the link is fine (or out of scope).
func checkLink(fromFile, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external: not checked offline
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := filepath.Join(filepath.Dir(fromFile), file)
	if file == "" {
		resolved = fromFile // intra-document fragment
	}
	st, err := os.Stat(resolved)
	if err != nil {
		return "target does not exist"
	}
	if frag == "" {
		return ""
	}
	if st.IsDir() || !strings.HasSuffix(resolved, ".md") {
		return "" // anchors only checked in markdown targets
	}
	anchors, err := anchorsOf(resolved)
	if err != nil {
		return "target unreadable: " + err.Error()
	}
	if !anchors[frag] {
		return fmt.Sprintf("no heading for anchor #%s in %s", frag, resolved)
	}
	return ""
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlinks FILE.md ...")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		broken, err := checkFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlinks:", err)
			os.Exit(2)
		}
		for _, msg := range broken {
			fmt.Println(msg)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "mdlinks: %d broken links\n", bad)
		os.Exit(1)
	}
}
