package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Querying the archive":        "querying-the-archive",
		"`GET /v1/query/time`":        "get-v1querytime",
		"Memory limits":               "memory-limits",
		"k/2-hop — Fast Mining":       "k2-hop--fast-mining",
		"Persistence and recovery":    "persistence-and-recovery",
		"API reference (convoyd)":     "api-reference-convoyd",
		"With_underscores and-dashes": "with_underscores-and-dashes",
	} {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	write("docs/API.md", "# API\n\n## Endpoints\n\n### `GET /v1/stats`\n")
	main := write("README.md", `# Readme

Good: [api](docs/API.md), [anchor](docs/API.md#endpoints),
[route](docs/API.md#get-v1stats), [self](#readme),
[external](https://example.com/nope).

`+"```bash\n[not a link](missing-in-fence.md)\n```"+`

Bad: [gone](docs/MISSING.md) and [bad anchor](docs/API.md#nope).
`)
	broken, err := checkFile(main)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 2 {
		t.Fatalf("got %d broken links, want 2: %v", len(broken), broken)
	}
	for i, frag := range []string{"docs/MISSING.md", "#nope"} {
		found := false
		for _, b := range broken {
			if contains(b, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("broken link %d (%s) not reported: %v", i, frag, broken)
		}
	}
}

func TestDuplicateHeadingAnchors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.md")
	if err := os.WriteFile(path, []byte("# Same\n\n# Same\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	anchors, err := anchorsOf(path)
	if err != nil {
		t.Fatal(err)
	}
	if !anchors["same"] || !anchors["same-1"] {
		t.Fatalf("duplicate headings: %v", anchors)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
