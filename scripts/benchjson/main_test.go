package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkAlgoPCCD-8   	     100	  11800345 ns/op	 2048111 B/op	   12345 allocs/op
BenchmarkAlgoPCCD-8   	     102	  11650012 ns/op	 2048000 B/op	   12344 allocs/op
BenchmarkK2HopParallel/workers=4-8         	     300	   3500000 ns/op	  900000 B/op	    5000 allocs/op
PASS
ok  	repro	12.345s
pkg: repro/internal/dbscan
BenchmarkCluster1000-8	    5000	    250000 ns/op
PASS
ok  	repro/internal/dbscan	2.000s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || f.CPU != "AMD EPYC 7B13" {
		t.Fatalf("env header: %+v", f)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	// Sorted by (pkg, name): repro before repro/internal/dbscan.
	b := f.Benchmarks[0]
	if b.Pkg != "repro" || b.Name != "BenchmarkAlgoPCCD" {
		t.Fatalf("first benchmark: %+v", b)
	}
	if len(b.Samples) != 2 || b.Samples[0].Runs != 100 || b.Samples[1].NsPerOp != 11650012 {
		t.Fatalf("samples not aggregated: %+v", b.Samples)
	}
	if b.Samples[0].BytesPerOp != 2048111 || b.Samples[0].AllocsPerOp != 12345 {
		t.Fatalf("benchmem fields: %+v", b.Samples[0])
	}
	if got := b.best(); got != 11650012 {
		t.Fatalf("best = %v, want the minimum sample", got)
	}
	last := f.Benchmarks[2]
	if last.Pkg != "repro/internal/dbscan" || last.Samples[0].BytesPerOp != 0 {
		t.Fatalf("no-benchmem line: %+v", last)
	}
}

func TestMarkdownBeforeAfter(t *testing.T) {
	cur, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	base := cur
	base.Benchmarks = append([]Benchmark(nil), cur.Benchmarks...)
	// Baseline where PCCD was 2× slower, and the dbscan bench is new.
	base.Benchmarks[0] = Benchmark{Pkg: "repro", Name: "BenchmarkAlgoPCCD",
		Samples: []Sample{{Runs: 50, NsPerOp: 23300024}}}
	base.Benchmarks = base.Benchmarks[:2]

	base.Benchmarks = append(base.Benchmarks, Benchmark{Pkg: "repro", Name: "BenchmarkGone",
		Samples: []Sample{{Runs: 10, NsPerOp: 500}}})

	var sb strings.Builder
	markdown(&sb, cur, &base)
	out := sb.String()
	if !strings.Contains(out, "| BenchmarkAlgoPCCD | 23.30ms | 11.65ms | -50.0% |") {
		t.Fatalf("missing improvement row:\n%s", out)
	}
	if !strings.Contains(out, "| BenchmarkGone | 500ns | — | removed |") {
		t.Fatalf("missing removed-benchmark row:\n%s", out)
	}
	if !strings.Contains(out, "| internal/dbscan.BenchmarkCluster1000 | — | 250.0µs | new |") {
		t.Fatalf("missing new-benchmark row:\n%s", out)
	}

	sb.Reset()
	markdown(&sb, cur, nil)
	if !strings.Contains(sb.String(), "| benchmark | ns/op |") {
		t.Fatalf("baseline-less table malformed:\n%s", sb.String())
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":                     "BenchmarkFoo",
		"BenchmarkFoo-16":                    "BenchmarkFoo",
		"BenchmarkFoo":                       "BenchmarkFoo",
		"BenchmarkK2HopParallel/workers=4-8": "BenchmarkK2HopParallel/workers=4",
		"BenchmarkOdd-name":                  "BenchmarkOdd-name",
		"BenchmarkTrailing-":                 "BenchmarkTrailing-",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadBaselineMissing(t *testing.T) {
	// No path: no baseline requested, no note.
	base, note, err := loadBaseline("")
	if base != nil || note != "" || err != nil {
		t.Fatalf("empty path: %v %q %v", base, note, err)
	}
	// Missing file: degraded mode with a note, not an error — first-run
	// bench jobs have no committed baseline yet.
	base, note, err = loadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline errored: %v", err)
	}
	if base != nil || note == "" {
		t.Fatalf("missing baseline: base=%v note=%q", base, note)
	}
	// Malformed existing file: still an error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadBaseline(bad); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	// Well-formed file round-trips.
	good := filepath.Join(t.TempDir(), "good.json")
	if err := os.WriteFile(good, []byte(`{"benchmarks":[{"pkg":"p","name":"BenchmarkX","samples":[{"runs":1,"ns_per_op":42}]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, note, err = loadBaseline(good)
	if err != nil || note != "" || base == nil || len(base.Benchmarks) != 1 {
		t.Fatalf("good baseline: base=%+v note=%q err=%v", base, note, err)
	}
}

const loadgenArtifact = `{
  "goos": "linux", "goarch": "amd64",
  "loadgen": {
    "config": {"feeds": 4},
    "ingest_ns": {"count": 32, "p50": 21000000, "p90": 31000000, "p99": 50000000, "max": 51000000},
    "close_lag_ns": {"count": 1660, "p50": 33000000, "p90": 59000000, "p99": 72000000, "max": 73000000},
    "shed": {"http_429": 0, "retries": 0},
    "peak_rss_bytes": 19148800
  }
}`

func TestParseInputLoadgenArtifact(t *testing.T) {
	f, err := parseInput(strings.NewReader(loadgenArtifact))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" {
		t.Fatalf("env header: %+v", f)
	}
	// p50/p90/p99 for both quantile groups, sorted by name.
	wantNames := []string{"CloseLag/p50", "CloseLag/p90", "CloseLag/p99", "Ingest/p50", "Ingest/p90", "Ingest/p99"}
	if len(f.Benchmarks) != len(wantNames) {
		t.Fatalf("converted %d pseudo-benchmarks, want %d: %+v", len(f.Benchmarks), len(wantNames), f.Benchmarks)
	}
	for i, b := range f.Benchmarks {
		if b.Name != wantNames[i] || b.Pkg != loadgenPkg {
			t.Fatalf("benchmark %d: %+v, want name %s", i, b, wantNames[i])
		}
	}
	ingest50 := f.Benchmarks[3]
	if ingest50.best() != 21000000 || ingest50.Samples[0].Runs != 32 {
		t.Fatalf("Ingest/p50: %+v", ingest50)
	}
}

func TestParseInputFilePassthrough(t *testing.T) {
	// A File-shaped JSON document (no "loadgen" key) passes through intact.
	f, err := parseInput(strings.NewReader(`{"cpu":"x","benchmarks":[{"pkg":"p","name":"BenchmarkX","samples":[{"runs":1,"ns_per_op":42}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.CPU != "x" || len(f.Benchmarks) != 1 || f.Benchmarks[0].best() != 42 {
		t.Fatalf("passthrough: %+v", f)
	}
	// Bench text still parses through the same entry point.
	f, err = parseInput(strings.NewReader(benchOutput))
	if err != nil || len(f.Benchmarks) != 3 {
		t.Fatalf("text input: %+v, %v", f, err)
	}
}

func TestLoadgenBaselineMarkdown(t *testing.T) {
	// A LOAD_N.json works as -baseline: write it, load it, and diff a run
	// whose ingest p50 halved.
	path := filepath.Join(t.TempDir(), "LOAD_5.json")
	if err := os.WriteFile(path, []byte(loadgenArtifact), 0o644); err != nil {
		t.Fatal(err)
	}
	base, note, err := loadBaseline(path)
	if err != nil || note != "" || base == nil {
		t.Fatalf("loadgen baseline: %v %q %v", base, note, err)
	}
	cur, err := parseInput(strings.NewReader(strings.Replace(loadgenArtifact, `"p50": 21000000`, `"p50": 10500000`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	markdown(&sb, cur, base)
	if !strings.Contains(sb.String(), "| loadgen.Ingest/p50 | 21.00ms | 10.50ms | -50.0% |") {
		t.Fatalf("missing loadgen delta row:\n%s", sb.String())
	}
}

func TestParseJSONDocSkipsZeroQuantiles(t *testing.T) {
	f, err := parseJSONDoc([]byte(`{"loadgen":{"ingest_ns":{"count":5,"p50":100,"p90":0,"p99":200},"close_lag_ns":{"count":0}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("zero quantiles recorded: %+v", f.Benchmarks)
	}
}
