package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkAlgoPCCD-8   	     100	  11800345 ns/op	 2048111 B/op	   12345 allocs/op
BenchmarkAlgoPCCD-8   	     102	  11650012 ns/op	 2048000 B/op	   12344 allocs/op
BenchmarkK2HopParallel/workers=4-8         	     300	   3500000 ns/op	  900000 B/op	    5000 allocs/op
PASS
ok  	repro	12.345s
pkg: repro/internal/dbscan
BenchmarkCluster1000-8	    5000	    250000 ns/op
PASS
ok  	repro/internal/dbscan	2.000s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || f.CPU != "AMD EPYC 7B13" {
		t.Fatalf("env header: %+v", f)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	// Sorted by (pkg, name): repro before repro/internal/dbscan.
	b := f.Benchmarks[0]
	if b.Pkg != "repro" || b.Name != "BenchmarkAlgoPCCD" {
		t.Fatalf("first benchmark: %+v", b)
	}
	if len(b.Samples) != 2 || b.Samples[0].Runs != 100 || b.Samples[1].NsPerOp != 11650012 {
		t.Fatalf("samples not aggregated: %+v", b.Samples)
	}
	if b.Samples[0].BytesPerOp != 2048111 || b.Samples[0].AllocsPerOp != 12345 {
		t.Fatalf("benchmem fields: %+v", b.Samples[0])
	}
	if got := b.best(); got != 11650012 {
		t.Fatalf("best = %v, want the minimum sample", got)
	}
	last := f.Benchmarks[2]
	if last.Pkg != "repro/internal/dbscan" || last.Samples[0].BytesPerOp != 0 {
		t.Fatalf("no-benchmem line: %+v", last)
	}
}

func TestMarkdownBeforeAfter(t *testing.T) {
	cur, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	base := cur
	base.Benchmarks = append([]Benchmark(nil), cur.Benchmarks...)
	// Baseline where PCCD was 2× slower, and the dbscan bench is new.
	base.Benchmarks[0] = Benchmark{Pkg: "repro", Name: "BenchmarkAlgoPCCD",
		Samples: []Sample{{Runs: 50, NsPerOp: 23300024}}}
	base.Benchmarks = base.Benchmarks[:2]

	base.Benchmarks = append(base.Benchmarks, Benchmark{Pkg: "repro", Name: "BenchmarkGone",
		Samples: []Sample{{Runs: 10, NsPerOp: 500}}})

	var sb strings.Builder
	markdown(&sb, cur, &base)
	out := sb.String()
	if !strings.Contains(out, "| BenchmarkAlgoPCCD | 23.30ms | 11.65ms | -50.0% |") {
		t.Fatalf("missing improvement row:\n%s", out)
	}
	if !strings.Contains(out, "| BenchmarkGone | 500ns | — | removed |") {
		t.Fatalf("missing removed-benchmark row:\n%s", out)
	}
	if !strings.Contains(out, "| internal/dbscan.BenchmarkCluster1000 | — | 250.0µs | new |") {
		t.Fatalf("missing new-benchmark row:\n%s", out)
	}

	sb.Reset()
	markdown(&sb, cur, nil)
	if !strings.Contains(sb.String(), "| benchmark | ns/op |") {
		t.Fatalf("baseline-less table malformed:\n%s", sb.String())
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":                     "BenchmarkFoo",
		"BenchmarkFoo-16":                    "BenchmarkFoo",
		"BenchmarkFoo":                       "BenchmarkFoo",
		"BenchmarkK2HopParallel/workers=4-8": "BenchmarkK2HopParallel/workers=4",
		"BenchmarkOdd-name":                  "BenchmarkOdd-name",
		"BenchmarkTrailing-":                 "BenchmarkTrailing-",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadBaselineMissing(t *testing.T) {
	// No path: no baseline requested, no note.
	base, note, err := loadBaseline("")
	if base != nil || note != "" || err != nil {
		t.Fatalf("empty path: %v %q %v", base, note, err)
	}
	// Missing file: degraded mode with a note, not an error — first-run
	// bench jobs have no committed baseline yet.
	base, note, err = loadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline errored: %v", err)
	}
	if base != nil || note == "" {
		t.Fatalf("missing baseline: base=%v note=%q", base, note)
	}
	// Malformed existing file: still an error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadBaseline(bad); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	// Well-formed file round-trips.
	good := filepath.Join(t.TempDir(), "good.json")
	if err := os.WriteFile(good, []byte(`{"benchmarks":[{"pkg":"p","name":"BenchmarkX","samples":[{"runs":1,"ns_per_op":42}]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, note, err = loadBaseline(good)
	if err != nil || note != "" || base == nil || len(base.Benchmarks) != 1 {
		t.Fatalf("good baseline: base=%+v note=%q err=%v", base, note, err)
	}
}
