// Command benchjson converts `go test -bench` text output into a stable
// JSON document, and renders a markdown before/after table against a
// baseline JSON file. CI uses it to record the repo's perf trajectory
// (BENCH_N.json artifacts) and to summarise each run against the committed
// baseline:
//
//	go test -run '^$' -bench=. -benchmem -count=3 ./... | tee bench.txt
//	benchjson -o BENCH_3.json bench.txt                    # text → JSON
//	benchjson -md -baseline BENCH_3.json bench.txt         # markdown table
//
// With no input file the bench text is read from stdin. Multiple samples
// per benchmark (from -count) are all recorded; comparisons use the best
// (minimum) ns/op, the usual way to damp scheduler noise.
//
// Input (and -baseline) files may also be JSON: a benchjson File passes
// through unchanged, and a cmd/loadgen artifact (detected by its "loadgen"
// key) is converted into pseudo-benchmarks — the ingest, close-lag and
// query latency quantiles as loadgen.Ingest/pNN, loadgen.CloseLag/pNN and
// loadgen.Query/pNN — so LOAD_N.json artifacts ride the same
// markdown/baseline machinery as BENCH_N.json:
//
//	go run ./cmd/loadgen -o LOAD_6.json
//	benchjson -md -baseline LOAD_5.json LOAD_6.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark line's measurements.
type Sample struct {
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Benchmark groups the samples of one benchmark function (-count > 1
// yields several).
type Benchmark struct {
	Pkg     string   `json:"pkg"`
	Name    string   `json:"name"`
	Samples []Sample `json:"samples"`
}

// File is the JSON document: environment header plus all benchmarks,
// sorted by (pkg, name) for stable diffs.
type File struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench reads `go test -bench` output. Lines it does not recognise
// (test chatter, PASS/ok lines) are skipped.
func parseBench(r io.Reader) (File, error) {
	var f File
	idx := map[string]int{} // "pkg\x00name" → index into f.Benchmarks
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			f.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmarking..." chatter line
		}
		s := Sample{Runs: runs}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if s.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
					ok = true
				}
			case "B/op":
				s.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				s.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if !ok {
			continue
		}
		name := normalizeName(fields[0])
		key := pkg + "\x00" + name
		i, seen := idx[key]
		if !seen {
			i = len(f.Benchmarks)
			idx[key] = i
			f.Benchmarks = append(f.Benchmarks, Benchmark{Pkg: pkg, Name: name})
		}
		f.Benchmarks[i].Samples = append(f.Benchmarks[i].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return f, err
	}
	sort.Slice(f.Benchmarks, func(a, b int) bool {
		if f.Benchmarks[a].Pkg != f.Benchmarks[b].Pkg {
			return f.Benchmarks[a].Pkg < f.Benchmarks[b].Pkg
		}
		return f.Benchmarks[a].Name < f.Benchmarks[b].Name
	})
	return f, nil
}

// loadQuantiles mirrors one quantile block of a cmd/loadgen artifact.
type loadQuantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// loadgenDoc is the subset of a cmd/loadgen LOAD_N.json artifact benchjson
// consumes. The presence of the "loadgen" key is what distinguishes the
// artifact from a benchjson File.
type loadgenDoc struct {
	GOOS    string `json:"goos"`
	GOARCH  string `json:"goarch"`
	CPU     string `json:"cpu"`
	Loadgen *struct {
		Ingest   loadQuantiles `json:"ingest_ns"`
		CloseLag loadQuantiles `json:"close_lag_ns"`
		Query    loadQuantiles `json:"query_ns"`
	} `json:"loadgen"`
}

// loadgenPkg is the pseudo-package loadgen metrics are filed under; its
// shortPkg rendering prefixes the table rows ("loadgen.Ingest/p50").
const loadgenPkg = "repro/loadgen"

// parseJSONDoc interprets a JSON input: a benchjson File verbatim, or a
// cmd/loadgen artifact converted to pseudo-benchmarks (one sample each,
// ns_per_op = the quantile, runs = the sample count behind it). Zero-valued
// quantiles (no samples) are omitted rather than recorded as 0 ns.
func parseJSONDoc(data []byte) (File, error) {
	var doc loadgenDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return File{}, err
	}
	if doc.Loadgen == nil {
		var f File
		err := json.Unmarshal(data, &f)
		return f, err
	}
	f := File{GOOS: doc.GOOS, GOARCH: doc.GOARCH, CPU: doc.CPU}
	add := func(group string, q loadQuantiles) {
		for _, m := range []struct {
			name string
			ns   float64
		}{{"p50", q.P50}, {"p90", q.P90}, {"p99", q.P99}} {
			if m.ns <= 0 {
				continue
			}
			f.Benchmarks = append(f.Benchmarks, Benchmark{
				Pkg:     loadgenPkg,
				Name:    group + "/" + m.name,
				Samples: []Sample{{Runs: q.Count, NsPerOp: m.ns}},
			})
		}
	}
	add("Ingest", doc.Loadgen.Ingest)
	add("CloseLag", doc.Loadgen.CloseLag)
	add("Query", doc.Loadgen.Query)
	sort.Slice(f.Benchmarks, func(a, b int) bool { return f.Benchmarks[a].Name < f.Benchmarks[b].Name })
	return f, nil
}

// parseInput reads bench text or a JSON document (File or loadgen
// artifact), detected by the leading byte.
func parseInput(r io.Reader) (File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return File{}, err
	}
	if t := bytes.TrimSpace(data); len(t) > 0 && t[0] == '{' {
		return parseJSONDoc(t)
	}
	return parseBench(bytes.NewReader(data))
}

// normalizeName strips the trailing -GOMAXPROCS suffix go test appends
// ("BenchmarkFoo-8" → "BenchmarkFoo", ".../workers=4-8" → ".../workers=4")
// so results keyed on one machine compare against a baseline recorded on a
// machine with a different core count.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// best returns the minimum ns/op across samples, or 0 when empty.
func (b Benchmark) best() float64 {
	best := 0.0
	for _, s := range b.Samples {
		if best == 0 || s.NsPerOp < best {
			best = s.NsPerOp
		}
	}
	return best
}

// markdown renders the before/after table. A nil baseline renders the
// current run only.
func markdown(w io.Writer, cur File, base *File) {
	baseBest := map[string]float64{}
	missing := map[string]bool{} // baseline keys not (yet) seen in this run
	if base != nil {
		for _, b := range base.Benchmarks {
			key := b.Pkg + "\x00" + b.Name
			baseBest[key] = b.best()
			missing[key] = true
		}
	}
	if base != nil {
		// Different hardware makes raw deltas noise, not signal — say so.
		if base.CPU != cur.CPU || base.GOOS != cur.GOOS || base.GOARCH != cur.GOARCH {
			fmt.Fprintf(w, "_baseline env: %s/%s, %s — this run: %s/%s, %s (different hardware; compare with care)_\n\n",
				base.GOOS, base.GOARCH, base.CPU, cur.GOOS, cur.GOARCH, cur.CPU)
		}
		fmt.Fprintln(w, "| benchmark | before ns/op | after ns/op | Δ |")
		fmt.Fprintln(w, "|---|---:|---:|---:|")
	} else {
		fmt.Fprintln(w, "| benchmark | ns/op |")
		fmt.Fprintln(w, "|---|---:|")
	}
	for _, b := range cur.Benchmarks {
		name := b.Name
		if short := shortPkg(b.Pkg); short != "" {
			name = short + "." + name
		}
		after := b.best()
		if base == nil {
			fmt.Fprintf(w, "| %s | %s |\n", name, fmtNs(after))
			continue
		}
		key := b.Pkg + "\x00" + b.Name
		delete(missing, key)
		before, had := baseBest[key]
		if !had || before == 0 {
			fmt.Fprintf(w, "| %s | — | %s | new |\n", name, fmtNs(after))
			continue
		}
		delta := (after - before) / before * 100
		fmt.Fprintf(w, "| %s | %s | %s | %+.1f%% |\n", name, fmtNs(before), fmtNs(after), delta)
	}
	if base == nil {
		return
	}
	// Benchmarks tracked by the baseline but absent from this run are the
	// regression the trajectory exists to catch — surface, don't omit.
	for _, b := range base.Benchmarks {
		if !missing[b.Pkg+"\x00"+b.Name] {
			continue
		}
		name := b.Name
		if short := shortPkg(b.Pkg); short != "" {
			name = short + "." + name
		}
		fmt.Fprintf(w, "| %s | %s | — | removed |\n", name, fmtNs(b.best()))
	}
}

// shortPkg keeps the path under the module root ("" for the root package).
func shortPkg(pkg string) string {
	if i := strings.Index(pkg, "/"); i >= 0 {
		return pkg[i+1:]
	}
	return ""
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// loadBaseline reads the baseline JSON for -md comparisons. A missing file
// is not an error — the first bench run of a repo (or a fresh CI workspace)
// has no committed baseline yet, and the job should still produce a table
// of the current run rather than fail. The returned note explains the
// degraded mode; an unreadable or malformed existing file still fails.
func loadBaseline(path string) (*File, string, error) {
	if path == "" {
		return nil, "", nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Sprintf("_no baseline file at `%s` — this run only_", path), nil
	}
	if err != nil {
		return nil, "", err
	}
	f, err := parseJSONDoc(data)
	if err != nil {
		return nil, "", fmt.Errorf("baseline: %w", err)
	}
	return &f, "", nil
}

func main() {
	out := flag.String("o", "", "write JSON to this file (default stdout)")
	md := flag.Bool("md", false, "emit a markdown table instead of JSON")
	baseline := flag.String("baseline", "", "baseline JSON for the markdown before/after columns")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	cur, err := parseInput(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *md {
		base, note, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if note != "" {
			fmt.Println(note)
			fmt.Println()
		}
		markdown(os.Stdout, cur, base)
		return
	}

	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
