package convoy

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/cmc"
	"repro/internal/dbscan"
	"repro/internal/model"
)

// StreamMiner mines convoys incrementally from a live feed of snapshots:
// positions arrive one timestamp at a time, and maximal partially connected
// convoys are reported as soon as they close (their group disperses). This
// wraps the PCCD sweep engine, which is inherently one-pass — useful for
// the streaming-companion use cases the paper's related work discusses
// (Tang et al., ICDE'12), where the data never rests in a store.
//
// Note the pattern class: a streaming miner cannot validate full
// connectivity retroactively without storing history; Closed() therefore
// reports partially connected convoys (like CMC/PCCD). Run the k/2-hop
// batch miner over persisted history for FC results.
//
// A StreamMiner is not safe for concurrent use; the convoyd server gives
// each feed a single owning shard actor for exactly this reason. That
// single-owner rule is also what lets the miner keep stateful hot-path
// engines: the sweep engine's per-miner dense-set buffers (cmc.Miner
// interns each tick's objects and runs its intersections word-parallel)
// and the incremental clustering engine (dbscan.Incremental carries the
// grid index and every object's eps-neighbourhood across ticks, so a tick
// re-clusters only the neighbourhoods its deltas touched; see
// docs/ARCHITECTURE.md "Incremental clustering"). A long-lived feed
// reaches a steady state where ingesting a tick costs work proportional
// to how much actually changed.
type StreamMiner struct {
	params Params
	miner  *cmc.Miner
	inc    *dbscan.Incremental
	seen   map[string]bool
	dupChk map[int32]struct{} // reused per Observe for duplicate-OID detection
}

// NewStreamMiner creates a streaming miner for the given parameters.
func NewStreamMiner(p Params) (*StreamMiner, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	inc, err := dbscan.NewIncremental(p.Eps, p.M)
	if err != nil {
		return nil, err
	}
	return &StreamMiner{
		params: p,
		miner:  cmc.NewMiner(p.M, p.K),
		inc:    inc,
		seen:   map[string]bool{},
		dupChk: map[int32]struct{}{},
	}, nil
}

// Observe ingests the positions of one timestamp. Timestamps must arrive in
// strictly increasing order; an out-of-order or duplicate timestamp is
// rejected with an error and leaves the miner untouched. The order may have
// gaps: a gap closes all open convoys (objects cannot be "together" at a
// missing tick), so mining restarts fresh at t.
//
// A snapshot containing the same OID more than once is canonicalized
// exactly as model.NewDataset canonicalizes a tick — stable-sorted by OID,
// keeping the last occurrence of each duplicate — so streaming a feed with
// duplicate fixes yields byte-identical convoys to batch-mining the same
// records. Duplicate-free snapshots pass through untouched, in their given
// order. The input slice is never modified.
func (s *StreamMiner) Observe(t int32, positions []ObjPos) error {
	if last, ok := s.miner.Last(); ok && t <= last {
		return fmt.Errorf("convoy: non-monotonic stream: observed t=%d after t=%d", t, last)
	}
	s.miner.Step(t, s.inc.Step(s.resolveDuplicates(positions)))
	return nil
}

// resolveDuplicates applies the duplicate-OID rule documented on Observe.
func (s *StreamMiner) resolveDuplicates(positions []ObjPos) []ObjPos {
	return canonPositions(s.dupChk, positions)
}

// canonPositions applies the duplicate-OID rule every streaming pattern
// miner shares (see StreamMiner.Observe): duplicate OIDs are canonicalized
// exactly as model.NewDataset canonicalizes a tick — stable-sorted by OID,
// keeping the last occurrence — so streaming a feed with duplicate fixes
// yields byte-identical results to batch-mining the same records. dupChk is
// a caller-owned scratch map, cleared here; the common duplicate-free case
// is one map pass and no allocation, and the input is never modified.
func canonPositions(dupChk map[int32]struct{}, positions []ObjPos) []ObjPos {
	clear(dupChk)
	dup := false
	for _, p := range positions {
		if _, ok := dupChk[p.OID]; ok {
			dup = true
			break
		}
		dupChk[p.OID] = struct{}{}
	}
	if !dup {
		return positions
	}
	canon := slices.Clone(positions)
	slices.SortStableFunc(canon, func(a, b ObjPos) int { return cmp.Compare(a.OID, b.OID) })
	out := canon[:0]
	for j := 0; j < len(canon); j++ {
		if j+1 < len(canon) && canon[j+1].OID == canon[j].OID {
			continue
		}
		out = append(out, canon[j])
	}
	return out
}

// Last returns the most recently observed timestamp; ok is false before the
// first Observe (and after a Reset).
func (s *StreamMiner) Last() (t int32, ok bool) { return s.miner.Last() }

// ObjPos is an object's position within one snapshot.
type ObjPos = model.ObjPos

// Closed drains the convoys that have closed since the last call, in the
// order they closed. A convoy is closed when its group can no longer be
// extended at the most recent observed timestamp.
//
// The miner keeps its result set maximal across the whole stream, so a
// convoy may be reported once and later superseded by a longer/larger one;
// Closed deduplicates by identity but does not retract — downstream
// consumers that need global maximality should apply
// model.MaximalConvoys at the end of the stream. Cost is proportional to
// the newly closed convoys, not the accumulated result set, so polling
// after every batch stays cheap on long-lived streams.
func (s *StreamMiner) Closed() []Convoy {
	var out []Convoy
	for _, c := range s.miner.Drain() {
		if !s.seen[c.Key()] {
			s.seen[c.Key()] = true
			out = append(out, c)
		}
	}
	return out
}

// Flush ends the stream: every still-open convoy of sufficient length is
// closed at the last observed timestamp, and the full maximal result set is
// returned.
func (s *StreamMiner) Flush() []Convoy {
	return s.miner.Finish()
}

// Reset returns the miner to its initial state, discarding all open
// candidates, closed convoys, timestamp history and the incremental
// clustering state (its memory included — an evicted feed must not pin its
// neighbourhood cache) while keeping the parameters. After a Reset the
// miner accepts any timestamp again.
func (s *StreamMiner) Reset() {
	s.miner.Reset()
	s.inc.Reset()
	s.seen = map[string]bool{}
}
