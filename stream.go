package convoy

import (
	"repro/internal/cmc"
	"repro/internal/dbscan"
	"repro/internal/model"
)

// StreamMiner mines convoys incrementally from a live feed of snapshots:
// positions arrive one timestamp at a time, and maximal partially connected
// convoys are reported as soon as they close (their group disperses). This
// wraps the PCCD sweep engine, which is inherently one-pass — useful for
// the streaming-companion use cases the paper's related work discusses
// (Tang et al., ICDE'12), where the data never rests in a store.
//
// Note the pattern class: a streaming miner cannot validate full
// connectivity retroactively without storing history; Closed() therefore
// reports partially connected convoys (like CMC/PCCD). Run the k/2-hop
// batch miner over persisted history for FC results.
type StreamMiner struct {
	params Params
	miner  *cmc.Miner
	closed []Convoy
	seen   map[string]bool
}

// NewStreamMiner creates a streaming miner for the given parameters.
func NewStreamMiner(p Params) (*StreamMiner, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &StreamMiner{
		params: p,
		miner:  cmc.NewMiner(p.M, p.K),
		seen:   map[string]bool{},
	}, nil
}

// Observe ingests the positions of one timestamp. Timestamps must arrive in
// increasing order; gaps close all open convoys (objects cannot be
// "together" at a missing tick).
func (s *StreamMiner) Observe(t int32, positions []ObjPos) {
	s.miner.Step(t, dbscan.Cluster(positions, s.params.Eps, s.params.M))
}

// ObjPos is an object's position within one snapshot.
type ObjPos = model.ObjPos

// Closed drains the convoys that have closed since the last call. A convoy
// is closed when its group can no longer be extended at the most recent
// observed timestamp.
//
// The miner keeps its result set maximal across the whole stream, so a
// convoy may be reported once and later superseded by a longer/larger one;
// Closed deduplicates by identity but does not retract — downstream
// consumers that need global maximality should apply
// model.MaximalConvoys at the end of the stream.
func (s *StreamMiner) Closed() []Convoy {
	var out []Convoy
	for _, c := range s.snapshotResults() {
		if !s.seen[c.Key()] {
			s.seen[c.Key()] = true
			out = append(out, c)
		}
	}
	return out
}

// Flush ends the stream: every still-open convoy of sufficient length is
// closed at the last observed timestamp, and the full maximal result set is
// returned.
func (s *StreamMiner) Flush() []Convoy {
	return s.miner.Finish()
}

// snapshotResults peeks at the miner's current result set without closing
// alive candidates.
func (s *StreamMiner) snapshotResults() []Convoy {
	return s.miner.Results()
}
