package convoy

import (
	"path/filepath"
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
)

// The same query against every public storage constructor must return
// identical convoys.
func TestPublicStoresAgree(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 19, Groups: [][]int32{{1, 2, 3}, {8, 9}}},
	})
	p := Params{M: 2, K: 8, Eps: minetest.Eps}
	want, err := MineDataset(ds, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Convoys) != 2 {
		t.Fatalf("scenario should have 2 convoys: %v", want.Convoys)
	}
	dir := t.TempDir()

	// Flat file: open directly and via load.
	flat := filepath.Join(dir, "d.k2f")
	if err := WriteFlatFile(flat, ds); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFlatFile(flat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(fs, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()
	if !model.ConvoysEqual(res.Convoys, want.Convoys) {
		t.Fatalf("flatfile store disagrees: %v", res.Convoys)
	}
	loaded, err := LoadFlatFile(flat)
	if err != nil {
		t.Fatal(err)
	}
	res, err = MineDataset(loaded, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !model.ConvoysEqual(res.Convoys, want.Convoys) {
		t.Fatalf("loaded flatfile disagrees: %v", res.Convoys)
	}

	// B+tree table.
	table := filepath.Join(dir, "d.k2r")
	if err := WriteTable(table, ds); err != nil {
		t.Fatal(err)
	}
	ts, err := OpenTable(table)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Mine(ts, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if !model.ConvoysEqual(res.Convoys, want.Convoys) {
		t.Fatalf("table store disagrees: %v", res.Convoys)
	}

	// LSM tree.
	ldir := filepath.Join(dir, "lsm")
	if err := WriteLSM(ldir, ds); err != nil {
		t.Fatal(err)
	}
	db, err := OpenLSM(ldir)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Mine(db, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if !model.ConvoysEqual(res.Convoys, want.Convoys) {
		t.Fatalf("lsm store disagrees: %v", res.Convoys)
	}
}

// Layout independence (paper requirement 6): the same store must serve
// queries with different m, k, eps without rebuilding.
func TestStoreLayoutIndependentOfParams(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 19, Groups: [][]int32{{1, 2, 3, 4}}},
	})
	dir := t.TempDir()
	table := filepath.Join(dir, "d.k2r")
	if err := WriteTable(table, ds); err != nil {
		t.Fatal(err)
	}
	ts, err := OpenTable(table)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	for _, p := range []Params{
		{M: 2, K: 5, Eps: minetest.Eps},
		{M: 4, K: 10, Eps: minetest.Eps},
		{M: 2, K: 18, Eps: minetest.Eps / 2},
	} {
		res, err := Mine(ts, p, nil)
		if err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
		want, err := MineDataset(ds, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !model.ConvoysEqual(res.Convoys, want.Convoys) {
			t.Fatalf("params %+v disagree: %v vs %v", p, res.Convoys, want.Convoys)
		}
	}
}
