package convoy_test

// Testable godoc examples for the public API: the quickstart (Mine over an
// in-memory store), the streaming miner, and the flat-file storage engine.
// `go test` executes these, so the documented snippets can never rot.

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	convoy "repro"
)

// platoon builds a small deterministic dataset: objects 1..3 travel
// together from tick 2 through tick 13, object 9 stays on its own.
func platoon() []convoy.Point {
	var points []convoy.Point
	for t := int32(0); t < 16; t++ {
		for oid := int32(1); oid <= 3; oid++ {
			x := float64(t) * 10
			if t < 2 || t > 13 {
				x += float64(oid) * 500 // scattered outside the trip
			}
			points = append(points, convoy.Point{OID: oid, T: t, X: x, Y: float64(oid)})
		}
		points = append(points, convoy.Point{OID: 9, T: t, X: float64(t) * 31, Y: 700})
	}
	return points
}

// ExampleMine mines convoys from an in-memory dataset with k/2-hop: at
// least M objects density-connected within Eps for at least K consecutive
// timestamps.
func ExampleMine() {
	ds := convoy.NewDataset(platoon())
	res, err := convoy.Mine(convoy.NewMemStore(ds), convoy.Params{M: 3, K: 8, Eps: 5}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Convoys {
		fmt.Printf("objects %v together from t=%d to t=%d\n", c.Objs, c.Start, c.End)
	}
	// Output:
	// objects {1,2,3} together from t=2 to t=13
}

// ExampleNewStreamMiner feeds snapshots to the incremental miner one
// timestamp at a time — no store, no history — and flushes at end of
// stream. Streaming results are partially connected convoys (see the
// StreamMiner docs).
func ExampleNewStreamMiner() {
	sm, err := convoy.NewStreamMiner(convoy.Params{M: 2, K: 3, Eps: 5})
	if err != nil {
		log.Fatal(err)
	}
	for t := int32(0); t < 5; t++ {
		err := sm.Observe(t, []convoy.ObjPos{
			{OID: 1, X: float64(t) * 10, Y: 0},
			{OID: 2, X: float64(t)*10 + 2, Y: 0},
			{OID: 7, X: 500 - float64(t)*10, Y: 90},
		})
		if err != nil { // timestamps must be strictly increasing
			log.Fatal(err)
		}
	}
	for _, c := range sm.Flush() {
		fmt.Printf("%v lasted %d ticks\n", c.Objs, c.Len())
	}
	// Output:
	// {1,2} lasted 5 ticks
}

// ExampleWriteFlatFile materialises a dataset as the paper's k2-File
// layout (a sorted binary flat file), loads it back, and mines it. The
// same dataset can be written once and mined many times with different
// parameters.
func ExampleWriteFlatFile() {
	dir, err := os.MkdirTemp("", "k2file")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "platoon.k2f")

	if err := convoy.WriteFlatFile(path, convoy.NewDataset(platoon())); err != nil {
		log.Fatal(err)
	}
	ds, err := convoy.LoadFlatFile(path)
	if err != nil {
		log.Fatal(err)
	}
	res, err := convoy.MineDataset(ds, convoy.Params{M: 3, K: 8, Eps: 5}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d convoy mined from %d on-disk points\n", len(res.Convoys), ds.NumPoints())
	// Output:
	// 1 convoy mined from 64 on-disk points
}
