package convoy_test

// End-to-end determinism contract of the parallel mining engine: for the
// same input, Workers: 1 and Workers: N must produce byte-identical
// results through the public API, on every generated benchmark dataset.
// The internal phase-level version of this test lives in
// internal/core/parallel_test.go; this one exercises the full public
// pipeline including validation.

import (
	"testing"

	convoy "repro"
	"repro/internal/experiments"
)

func renderConvoys(cs []convoy.Convoy) string {
	s := ""
	for _, c := range cs {
		s += c.String() + "\n"
	}
	return s
}

func TestMineParallelDeterminism(t *testing.T) {
	for _, spec := range experiments.Datasets() {
		t.Run(spec.Name, func(t *testing.T) {
			ds := spec.Build(experiments.Tiny)
			// Ks[1] (~10% of the timeline) yields convoys on every
			// generated dataset; the mid-sweep k leaves Trucks empty.
			p := convoy.Params{M: spec.M, K: spec.Ks(ds)[1], Eps: spec.Eps}
			seq, err := convoy.MineDataset(ds, p, &convoy.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(seq.Convoys) == 0 {
				t.Fatalf("%s: fixture mined no convoys — determinism check vacuous", spec.Name)
			}
			want := renderConvoys(seq.Convoys)
			for _, workers := range []int{2, 8} {
				par, err := convoy.MineDataset(ds, p, &convoy.Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := renderConvoys(par.Convoys); got != want {
					t.Fatalf("workers=%d differs from sequential:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
						workers, want, workers, got)
				}
				if par.K2Hop == nil || par.K2Hop.Workers != workers {
					t.Fatalf("workers=%d: report did not record the pool size: %+v", workers, par.K2Hop)
				}
			}
		})
	}
}

func TestMineRejectsNegativeWorkers(t *testing.T) {
	ds := experiments.TrucksSpec().Build(experiments.Tiny)
	_, err := convoy.MineDataset(ds, convoy.Params{M: 3, K: 4, Eps: 40}, &convoy.Options{Workers: -1})
	if err == nil {
		t.Fatal("Workers: -1 should be rejected")
	}
}

func TestMineDefaultWorkersIsPerCore(t *testing.T) {
	ds := experiments.TrucksSpec().Build(experiments.Tiny)
	res, err := convoy.MineDataset(ds, convoy.Params{M: 3, K: 6, Eps: 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.K2Hop == nil {
		t.Fatal("no k/2-hop report")
	}
	if res.K2Hop.Workers < 1 {
		t.Fatalf("default workers = %d, want ≥ 1", res.K2Hop.Workers)
	}
}

// Example-style sanity for the wall-vs-CPU accounting exposed in the
// report (used by the experiments tables).
func TestReportPhaseAccounting(t *testing.T) {
	spec := experiments.TDriveSpec()
	ds := spec.Build(experiments.Tiny)
	res, err := convoy.MineDataset(ds, convoy.Params{M: spec.M, K: spec.KMid(ds), Eps: spec.Eps},
		&convoy.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.K2Hop
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.BenchmarkTime > 0 && rep.BenchmarkCPU <= 0 {
		t.Fatalf("benchmark wall %v but no CPU recorded", rep.BenchmarkTime)
	}
}
