// Trafficjam: the paper's second motivating use-case (§1): "to detect all
// traffic jams of duration more than 15 mins involving 50 cars or more,
// set m=50 and k=15 (at 1-minute sampling)". Scaled down here: a jam is
// m ≥ 8 vehicles stuck within eps of each other for k ≥ 12 ticks.
//
// The example simulates a city with taxis, injects a jam by freezing
// traffic on one road segment, and shows how (m, k) separate the jam from
// ordinary platoons.
package main

import (
	"fmt"
	"log"
	"math/rand"

	convoy "repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	var pts []convoy.Point
	const ticks = 60

	// 30 free-flowing taxis.
	for oid := int32(0); oid < 30; oid++ {
		x, y := rng.Float64()*5000, rng.Float64()*5000
		for t := int32(0); t < ticks; t++ {
			x += rng.Float64()*80 - 20 // drifting east-ish
			y += rng.Float64()*40 - 20
			pts = append(pts, convoy.Point{OID: oid, T: t, X: x, Y: y})
		}
	}

	// A jam: 12 vehicles pile up on a road segment between ticks 20 and 45.
	for i := int32(0); i < 12; i++ {
		oid := 100 + i
		for t := int32(0); t < ticks; t++ {
			var x, y float64
			switch {
			case t < 20: // approaching the segment
				x, y = float64(t)*100+float64(i)*120, 2500
			case t <= 45: // stuck bumper to bumper
				x, y = 2000+float64(i)*12, 2500
			default: // dissolving
				x, y = 2000+float64(t-45)*150+float64(i)*120, 2500
			}
			pts = append(pts, convoy.Point{
				OID: oid, T: t,
				X: x + rng.Float64()*4, Y: y + rng.Float64()*4,
			})
		}
	}
	ds := convoy.NewDataset(pts)

	// Jam query: at least 8 vehicles within 60 m for at least 12 ticks.
	res, err := convoy.MineDataset(ds, convoy.Params{M: 8, K: 12, Eps: 60}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jam query (m=8, k=12): %d convoy(s) in %s\n", len(res.Convoys), res.Duration)
	for _, c := range res.Convoys {
		fmt.Printf("  JAM: %d vehicles stuck t=[%d,%d] (%d ticks): %v\n",
			c.Size(), c.Start, c.End, c.Len(), c.Objs)
	}

	// A small-m query would also report ordinary pairs travelling together;
	// compare candidate volumes to see why m matters.
	loose, err := convoy.MineDataset(ds, convoy.Params{M: 2, K: 12, Eps: 60}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loose query (m=2): %d convoys — m filters jams from company\n", len(loose.Convoys))

	// The pruning effect: how little data k/2-hop touched for the jam query.
	if res.K2Hop != nil {
		fmt.Printf("pruning: %d of %d points touched (%.1f%%), %d benchmark snapshots\n",
			res.PointsProcessed, ds.NumPoints(),
			100*float64(res.PointsProcessed)/float64(ds.NumPoints()),
			res.K2Hop.BenchmarkPoints)
	}
}
