// Storagetour: the paper's §5 in action. The same dataset is materialised
// under all three persistent storage engines — flat file, relational
// (clustered B+tree) and LSM-tree — and the same k/2-hop query runs against
// each, printing wall-clock and I/O statistics. The flat file pays for
// loading everything; the indexed engines serve k/2-hop's two access paths
// (benchmark-point range scans and hop-window point queries) directly.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	convoy "repro"
	"repro/internal/datagen/tdrive"
	"repro/internal/storage"
	"repro/internal/storage/flatfile"
	"repro/internal/storage/lsm"
	"repro/internal/storage/relational"
)

func main() {
	p := tdrive.DefaultParams(5)
	p.Taxis, p.Ticks = 150, 250
	ds := tdrive.Generate(p)
	params := convoy.Params{M: 3, K: 40, Eps: 120}
	fmt.Printf("dataset: %d points; query m=%d k=%d eps=%g\n\n",
		ds.NumPoints(), params.M, params.K, params.Eps)

	dir, err := os.MkdirTemp("", "storagetour")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- k2-File: load the whole flat file, mine in memory. -------------
	flatPath := filepath.Join(dir, "data.k2f")
	if err := flatfile.WriteDataset(flatPath, ds); err != nil {
		log.Fatal(err)
	}
	fs, err := flatfile.Open(flatPath)
	if err != nil {
		log.Fatal(err)
	}
	mem, err := fs.Load()
	if err != nil {
		log.Fatal(err)
	}
	res, err := convoy.MineDataset(mem, params, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("k2-File (load + mine in memory)", res, fs.Stats())
	fs.Close()

	// --- k2-RDBMS: clustered B+tree on (t, oid). -------------------------
	rdbmsPath := filepath.Join(dir, "data.k2r")
	if err := relational.WriteDataset(rdbmsPath, ds, nil); err != nil {
		log.Fatal(err)
	}
	rs, err := relational.Open(rdbmsPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err = convoy.Mine(rs, params, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("k2-RDBMS (B+tree)", res, rs.Stats())
	rs.Close()

	// --- k2-LSMT: log-structured merge-tree. -----------------------------
	lsmDir := filepath.Join(dir, "lsmdb")
	if err := lsm.WriteDataset(lsmDir, ds, nil); err != nil {
		log.Fatal(err)
	}
	db, err := lsm.Open(lsmDir, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err = convoy.Mine(db, params, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("k2-LSMT (LSM-tree)", res, db.Stats())
	db.Close()
}

func report(name string, res *convoy.Result, stats *storage.IOStats) {
	s := stats.Snapshot()
	fmt.Printf("%s\n", name)
	fmt.Printf("  convoys=%d time=%s\n", len(res.Convoys), res.Duration)
	fmt.Printf("  io: scans=%d point-queries=%d points-read=%d seeks=%d bytes=%d\n\n",
		s.SnapshotScans, s.PointQueries, s.PointsRead, s.Seeks, s.BytesRead)
}
