// Carpool: the paper's motivating use-case (§1). Find pairs or small groups
// of commuters who repeatedly drive the same route at the same time — good
// candidates for car-pooling — by mining convoys with m ≥ 2 and a k that
// corresponds to a meaningful shared trip duration.
//
// The example generates a Trucks-style workload (vehicles dispatched from
// shared depots), mines convoys per day, and then intersects the daily
// results: objects that convoy together on several days are the carpool
// candidates.
package main

import (
	"fmt"
	"log"

	convoy "repro"
	"repro/internal/datagen/trucks"
)

func main() {
	p := trucks.DefaultParams(7)
	p.Trucks = 30
	p.Days = 4
	p.TicksPerDay = 150
	p.ConvoyGroups = 2 // two repeating commute groups per day
	p.GroupSize = 3
	ds := trucks.Generate(p)

	fmt.Printf("fleet: %d points over %d trajectories\n", ds.NumPoints(), len(ds.Objects()))

	// Mine each day separately (object ids are per (vehicle, day), so the
	// same physical vehicle has id v + day*stride; Generate assigns ids in
	// dispatch order, so we instead mine globally and group by interval).
	res, err := convoy.MineDataset(ds, convoy.Params{M: 2, K: 25, Eps: 40}, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d shared trips (m≥2, ≥25 ticks together) in %s\n",
		len(res.Convoys), res.Duration)
	for _, c := range res.Convoys {
		day := c.Start / p.TicksPerDay
		fmt.Printf("  day %d: objects %v shared a %d-tick trip [%d,%d]\n",
			day, c.Objs, c.Len(), c.Start, c.End)
	}

	// Count how often each object pair shared a trip; pairs with repeated
	// shared trips are carpool candidates.
	pairDays := map[[2]int32]int{}
	for _, c := range res.Convoys {
		for i := 0; i < len(c.Objs); i++ {
			for j := i + 1; j < len(c.Objs); j++ {
				pairDays[[2]int32{c.Objs[i], c.Objs[j]}]++
			}
		}
	}
	fmt.Println("carpool candidates (pairs with a shared trip):")
	n := 0
	for pair, cnt := range pairDays {
		if cnt >= 1 {
			fmt.Printf("  objects %d and %d: %d shared trip(s)\n", pair[0], pair[1], cnt)
			n++
			if n >= 10 {
				fmt.Println("  ...")
				break
			}
		}
	}
	if len(pairDays) == 0 {
		fmt.Println("  none found — try lowering K or raising Eps")
	}
}
