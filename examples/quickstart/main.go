// Quickstart: build a tiny dataset by hand, mine it with k/2-hop, and read
// the result. Three cars commute together for twelve ticks; two pedestrians
// meet for four ticks; a drifter wanders alone.
package main

import (
	"fmt"
	"log"

	convoy "repro"
)

func main() {
	var points []convoy.Point
	for t := int32(0); t < 20; t++ {
		// Cars 1..3 drive in a tight line between ticks 4 and 15.
		for oid := int32(1); oid <= 3; oid++ {
			x := float64(t) * 10 // travelling east
			if t < 4 || t > 15 {
				x += float64(oid) * 500 // scattered before/after the trip
			}
			points = append(points, convoy.Point{
				OID: oid, T: t, X: x, Y: float64(oid) * 2,
			})
		}
		// Pedestrians 10 and 11 cross paths briefly (ticks 8..11).
		for oid := int32(10); oid <= 11; oid++ {
			x := 1000.0
			if t < 8 || t > 11 {
				x += float64(oid) * 300
			}
			points = append(points, convoy.Point{OID: oid, T: t, X: x, Y: 50})
		}
		// Object 99 never travels with anyone.
		points = append(points, convoy.Point{OID: 99, T: t, X: float64(t) * 37, Y: 900})
	}

	ds := convoy.NewDataset(points)

	// A convoy = at least M objects within Eps of each other (transitively)
	// for at least K consecutive ticks.
	res, err := convoy.Mine(convoy.NewMemStore(ds), convoy.Params{M: 2, K: 10, Eps: 8}, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("k/2-hop found %d convoy(s) in %s, touching %d of %d points\n",
		len(res.Convoys), res.Duration, res.PointsProcessed, ds.NumPoints())
	for _, c := range res.Convoys {
		fmt.Printf("  objects %v travelled together from t=%d to t=%d (%d ticks)\n",
			c.Objs, c.Start, c.End, c.Len())
	}
	// The cars form a convoy; the pedestrians' 4-tick meeting is below K;
	// the drifter never joins anything.

	// Lowering K to 4 picks up the pedestrians too.
	res, err = convoy.Mine(convoy.NewMemStore(ds), convoy.Params{M: 2, K: 4, Eps: 8}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with K=4: %d convoys\n", len(res.Convoys))
	for _, c := range res.Convoys {
		fmt.Printf("  %v over [%d,%d]\n", c.Objs, c.Start, c.End)
	}
}
