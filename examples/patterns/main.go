// Patterns: the paper's §7 extensions side by side. One herd of animals is
// tracked for 40 ticks; the three pattern classes answer different
// questions about it:
//
//   - convoys  — who stays density-connected (arbitrary shape)?
//   - flocks   — who stays inside one fixed-size disk (bounded diameter)?
//   - moving clusters — where does the herd go, allowing members to swap?
//
// The herd walks in a long line (a convoy but not a flock), a sub-group of
// three keeps tight formation (a flock), and animals join and leave the
// herd over time (visible to the moving-cluster miner only).
package main

import (
	"fmt"
	"log"
	"math/rand"

	convoy "repro"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	var pts []convoy.Point
	const ticks = 40

	// The herd: 8 animals in a line, spacing ~1.0, drifting north-east.
	// Animals 0..2 keep a tight cluster (within a radius-1 disk).
	for t := int32(0); t < ticks; t++ {
		bx, by := float64(t)*2, float64(t)*1.5
		for i := int32(0); i < 8; i++ {
			var x, y float64
			if i < 3 {
				// Tight trio at the head of the line.
				x, y = bx+float64(i)*0.7, by+rng.Float64()*0.3
			} else {
				// The rest string out behind, spaced ~1.1 apart.
				x, y = bx-float64(i-2)*1.1, by+rng.Float64()*0.4
			}
			pts = append(pts, convoy.Point{OID: i, T: t, X: x, Y: y})
		}
		// Membership churn at the tail: animal 100+t/8 tags along for ~8
		// ticks then drops off, replaced by the next.
		joiner := 100 + t/8
		pts = append(pts, convoy.Point{OID: joiner, T: t, X: bx - 6.5, Y: by + 0.2})
	}
	ds := convoy.NewDataset(pts)
	store := convoy.NewMemStore(ds)

	// Convoys: the whole line is density-connected with eps=3.5 (a line
	// needs eps ≳ 3 spacings for its points to be core under minPts=6 —
	// exactly the shape freedom convoys have and flocks lack).
	cres, err := convoy.Mine(store, convoy.Params{M: 6, K: 30, Eps: 3.5}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convoys (m=6, k=30, eps=3.5): %d\n", len(cres.Convoys))
	for _, c := range cres.Convoys {
		fmt.Printf("  %v over [%d,%d] — the whole line counts\n", c.Objs, c.Start, c.End)
	}

	// Flocks: only the tight trio fits one radius-1.1 disk.
	flocks, err := convoy.MineFlocks(store, convoy.FlockParams{M: 3, K: 30, R: 1.1}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flocks (m=3, k=30, r=1.1): %d\n", len(flocks))
	for _, f := range flocks {
		fmt.Printf("  %v over [%d,%d] — only the tight formation\n", f.Objs, f.Start, f.End)
	}

	// Moving clusters: the herd as a whole, tolerant of the tail churn.
	mcs, err := convoy.MineMovingClusters(store, convoy.MovingClusterParams{
		M: 3, Eps: 1.6, Theta: 0.5, K: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("moving clusters (theta=0.5, k=30): %d\n", len(mcs))
	for _, mc := range mcs {
		fmt.Printf("  [%d,%d]: starts as %v, ends as %v — members may churn\n",
			mc.Start, mc.End(), mc.Clusters[0], mc.Clusters[len(mc.Clusters)-1])
	}
}
