package convoy

import (
	"repro/internal/storage/flatfile"
	"repro/internal/storage/lsm"
	"repro/internal/storage/relational"
)

// This file exposes the persistent storage engines of the paper's §5
// through the public API, so a dataset can be materialised once and mined
// many times with different parameters (the paper's requirement 6: the
// physical layout must not depend on m, k or eps).

// WriteFlatFile materialises ds as a sorted binary flat file (the paper's
// k2-File layout). Best mined by loading fully: see LoadFlatFile.
func WriteFlatFile(path string, ds *Dataset) error {
	return flatfile.WriteDataset(path, ds)
}

// OpenFlatFile opens a flat file as a Store. Snapshot scans are cheap;
// point queries cost O(log n) seeks each — the paper's k2-File variant
// therefore loads the file into memory first (LoadFlatFile).
func OpenFlatFile(path string) (Store, error) { return flatfile.Open(path) }

// LoadFlatFile reads an entire flat file into an in-memory dataset.
func LoadFlatFile(path string) (*Dataset, error) {
	fs, err := flatfile.Open(path)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	return fs.Load()
}

// WriteTable materialises ds as a B+tree table (the paper's k2-RDBMS
// layout: a clustered index on (t, oid)).
func WriteTable(path string, ds *Dataset) error {
	return relational.WriteDataset(path, ds, nil)
}

// OpenTable opens a B+tree table as a Store.
func OpenTable(path string) (Store, error) { return relational.Open(path, nil) }

// WriteLSM materialises ds as an LSM-tree database in dir (the paper's
// k2-LSMT layout), flushing and compacting to a single sorted run.
func WriteLSM(dir string, ds *Dataset) error {
	return lsm.WriteDataset(dir, ds, nil)
}

// OpenLSM opens an LSM-tree database as a Store. The returned store also
// accepts live inserts through the underlying type (see package
// repro/internal/storage/lsm for the full API).
func OpenLSM(dir string) (Store, error) { return lsm.Open(dir, nil) }
