// Package convoy is the public API of the k/2-hop reproduction: exact
// mining of fully connected (m,eps)-convoys — groups of at least m objects
// that stay density-connected among themselves for at least k consecutive
// timestamps — from trajectory data, following
//
//	Orakzai, Calders, Pedersen: "k/2-hop: Fast Mining of Convoy Patterns
//	With Effective Pruning", PVLDB 12(9), 2019.
//
// The default algorithm is k/2-hop, which clusters only every ⌊k/2⌋-th
// timestamp in full and prunes everything that cannot span two consecutive
// benchmark points. The baselines the paper compares against (VCoDA,
// VCoDA*, PCCD, CuTS, DCM, SPARE) are available through Options.Algorithm.
//
// Data access goes through the Store interface; bundled engines are the
// in-memory store (NewMemStore), a flat file (repro/internal is wrapped by
// the cmd tools), a B+tree table and an LSM-tree — see the storage
// subpackages and the examples directory.
//
// Quick start:
//
//	ds := convoy.NewDataset(points)
//	res, err := convoy.Mine(convoy.NewMemStore(ds), convoy.Params{M: 3, K: 10, Eps: 50})
//	for _, c := range res.Convoys { fmt.Println(c) }
package convoy

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cmc"
	"repro/internal/core"
	"repro/internal/cuts"
	"repro/internal/dcm"
	"repro/internal/mapreduce"
	"repro/internal/model"
	"repro/internal/spare"
	"repro/internal/storage"
	"repro/internal/vcoda"
)

// Re-exported data types. These are aliases, so values flow freely between
// the public API and the internal packages.
type (
	// Point is one trajectory sample <oid, t, x, y>.
	Point = model.Point
	// Convoy is a mined convoy: an object set plus an inclusive lifespan.
	Convoy = model.Convoy
	// ObjSet is a sorted set of object identifiers.
	ObjSet = model.ObjSet
	// Interval is an inclusive timestamp interval.
	Interval = model.Interval
	// Dataset is an immutable in-memory trajectory dataset.
	Dataset = model.Dataset
	// Store is the storage abstraction miners read from.
	Store = storage.Store
	// IOStats counts the I/O a store performed.
	IOStats = storage.IOStats
	// K2HopReport carries k/2-hop's per-phase timings and pruning counters.
	K2HopReport = core.Report
)

// NewDataset builds a dataset from raw points.
func NewDataset(points []Point) *Dataset { return model.NewDataset(points) }

// NewObjSet builds an object set from ids.
func NewObjSet(ids ...int32) ObjSet { return model.NewObjSet(ids...) }

// NewMemStore wraps a dataset as an in-memory Store.
func NewMemStore(ds *Dataset) Store { return storage.NewMemStore(ds) }

// Params are the convoy parameters of Definition 8: at least M objects
// density-connected within Eps for at least K consecutive timestamps.
type Params struct {
	M   int
	K   int
	Eps float64
}

func (p Params) validate() error {
	if p.M < 1 {
		return errors.New("convoy: M must be ≥ 1")
	}
	if p.K < 1 {
		return errors.New("convoy: K must be ≥ 1")
	}
	if !(p.Eps >= 0) {
		return errors.New("convoy: Eps must be ≥ 0")
	}
	return nil
}

// Algorithm selects a mining algorithm.
type Algorithm string

// Available algorithms. K2Hop, VCoDA and VCoDAStar mine fully connected
// convoys; PCCD, CuTS, DCM and SPARE mine partially connected convoys (the
// pattern class those baselines were defined for).
const (
	K2Hop     Algorithm = "k2hop"
	VCoDA     Algorithm = "vcoda"
	VCoDAStar Algorithm = "vcoda*"
	PCCD      Algorithm = "pccd"
	CuTS      Algorithm = "cuts"
	DCM       Algorithm = "dcm"
	SPARE     Algorithm = "spare"
)

// Options tune the run. The zero value means: k/2-hop, one worker per
// core.
type Options struct {
	// Algorithm selects the miner (default K2Hop).
	Algorithm Algorithm
	// Workers bounds the parallelism of the run: the k/2-hop pipeline fans
	// its benchmark clusterings, hop-windows and extensions out over a pool
	// of this size, and DCM/SPARE use it as their per-node task slots. The
	// default (0) is one worker per core, runtime.GOMAXPROCS(0); 1 forces
	// the sequential path. Mining results are byte-identical for every
	// worker count. Negative values are rejected.
	Workers int
	// Nodes simulates a multi-node cluster for DCM and SPARE: tasks pay a
	// scheduling latency and their inputs/outputs are serialised (default 1
	// node, in-process).
	Nodes int
	// Lambda is the partition/piece length for DCM and CuTS (0 = default).
	Lambda int
	// DisableReExtend turns off k/2-hop's post-extension fixpoint (paper
	// fidelity mode; see DESIGN.md §3).
	DisableReExtend bool
}

// Result carries the mined convoys and run metadata.
type Result struct {
	Convoys   []Convoy
	Algorithm Algorithm
	Duration  time.Duration
	// PointsProcessed is the number of points read from the store.
	PointsProcessed int64
	// PreValidation is the number of candidates entering FC validation
	// (k/2-hop and VCoDA variants only).
	PreValidation int
	// K2Hop holds the per-phase report when Algorithm is K2Hop.
	K2Hop *K2HopReport
}

// Mine runs a convoy miner against a store.
func Mine(store Store, p Params, opts *Options) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	o := Options{Algorithm: K2Hop, Workers: runtime.GOMAXPROCS(0), Nodes: 1}
	if opts != nil {
		if opts.Workers < 0 {
			return nil, errors.New("convoy: Workers must be ≥ 0")
		}
		if opts.Nodes < 0 {
			return nil, errors.New("convoy: Nodes must be ≥ 0")
		}
		if opts.Algorithm != "" {
			o.Algorithm = opts.Algorithm
		}
		if opts.Workers > 0 {
			o.Workers = opts.Workers
		}
		if opts.Nodes > 0 {
			o.Nodes = opts.Nodes
		}
		o.Lambda = opts.Lambda
		o.DisableReExtend = opts.DisableReExtend
	}
	res := &Result{Algorithm: o.Algorithm}
	before := store.Stats().Snapshot().PointsRead
	start := time.Now()
	var err error
	switch o.Algorithm {
	case K2Hop:
		if p.K == 1 {
			// k/2-hop needs k ≥ 2; for k = 1 every miner degenerates to a
			// full sweep, so use VCoDA*.
			var rep vcoda.Report
			res.Convoys, rep, err = vcoda.MineStar(store, p.M, p.K, p.Eps)
			res.PreValidation = rep.PreValidation
			break
		}
		cfg := core.DefaultConfig(p.M, p.K, p.Eps)
		cfg.ReExtend = !o.DisableReExtend
		cfg.Workers = o.Workers
		var rep *core.Report
		res.Convoys, rep, err = core.Mine(store, cfg)
		res.K2Hop = rep
		if rep != nil {
			res.PreValidation = rep.PreValidation
		}
	case VCoDA:
		var rep vcoda.Report
		res.Convoys, rep, err = vcoda.Mine(store, p.M, p.K, p.Eps)
		res.PreValidation = rep.PreValidation
	case VCoDAStar:
		var rep vcoda.Report
		res.Convoys, rep, err = vcoda.MineStar(store, p.M, p.K, p.Eps)
		res.PreValidation = rep.PreValidation
	case PCCD:
		res.Convoys, err = cmc.Mine(store, p.M, p.K, p.Eps)
	case CuTS:
		res.Convoys, err = cuts.Mine(store, cuts.Config{M: p.M, K: p.K, Eps: p.Eps, Lambda: o.Lambda})
	case DCM:
		res.Convoys, err = dcm.Mine(store, dcm.Config{
			M: p.M, K: p.K, Eps: p.Eps, Lambda: o.Lambda, Cluster: clusterFor(o),
		})
	case SPARE:
		res.Convoys, err = spare.Mine(store, spare.Config{
			M: p.M, K: p.K, Eps: p.Eps, Cluster: clusterFor(o),
		})
	default:
		return nil, fmt.Errorf("convoy: unknown algorithm %q", o.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	res.PointsProcessed = store.Stats().Snapshot().PointsRead - before
	return res, nil
}

// MineDataset is a convenience for in-memory data.
func MineDataset(ds *Dataset, p Params, opts *Options) (*Result, error) {
	return Mine(NewMemStore(ds), p, opts)
}

func clusterFor(o Options) mapreduce.Cluster {
	if o.Nodes > 1 {
		return mapreduce.Yarn(o.Nodes, o.Workers)
	}
	return mapreduce.Local(o.Workers)
}
