package convoy

import (
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
)

func TestStreamMinerBasic(t *testing.T) {
	sm, err := NewStreamMiner(Params{M: 2, K: 3, Eps: minetest.Eps})
	if err != nil {
		t.Fatal(err)
	}
	near := func(oid int32, x float64) ObjPos { return ObjPos{OID: oid, X: x} }
	// Pair together ticks 0..4, then apart.
	for tt := int32(0); tt < 5; tt++ {
		sm.Observe(tt, []ObjPos{near(1, 0), near(2, 1)})
	}
	if got := sm.Closed(); len(got) != 0 {
		t.Fatalf("nothing should close while alive: %v", got)
	}
	sm.Observe(5, []ObjPos{near(1, 0), near(2, 500)})
	got := sm.Closed()
	want := model.NewConvoy(NewObjSet(1, 2), 0, 4)
	if len(got) != 1 || !got[0].Equal(want) {
		t.Fatalf("closed = %v, want %v", got, want)
	}
	// No duplicate reporting.
	sm.Observe(6, []ObjPos{near(1, 0), near(2, 500)})
	if got := sm.Closed(); len(got) != 0 {
		t.Fatalf("duplicate close: %v", got)
	}
}

func TestStreamMinerFlushMatchesBatch(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ds := minetest.Random(seed, 10, 15)
		ts, te := ds.TimeRange()
		p := Params{M: 3, K: 4, Eps: minetest.Eps}
		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		for tt := ts; tt <= te; tt++ {
			sm.Observe(tt, ds.Snapshot(tt))
		}
		got := sm.Flush()
		want, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if !model.ConvoysEqual(got, want.Convoys) {
			t.Fatalf("seed %d: stream %v != batch %v", seed, got, want.Convoys)
		}
	}
}

func TestStreamMinerGapClosesConvoys(t *testing.T) {
	sm, err := NewStreamMiner(Params{M: 2, K: 2, Eps: minetest.Eps})
	if err != nil {
		t.Fatal(err)
	}
	pair := []ObjPos{{OID: 1, X: 0}, {OID: 2, X: 1}}
	sm.Observe(0, pair)
	sm.Observe(1, pair)
	sm.Observe(10, pair) // gap
	sm.Observe(11, pair)
	got := sm.Flush()
	want := []Convoy{
		model.NewConvoy(NewObjSet(1, 2), 0, 1),
		model.NewConvoy(NewObjSet(1, 2), 10, 11),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestStreamMinerValidation(t *testing.T) {
	if _, err := NewStreamMiner(Params{M: 0, K: 2, Eps: 1}); err == nil {
		t.Fatalf("invalid params should fail")
	}
}

// TestStreamMinerRejectsNonMonotonic is the regression test for the
// documented-but-unchecked contract: timestamps must be strictly
// increasing, and a violating Observe must leave the miner untouched.
func TestStreamMinerRejectsNonMonotonic(t *testing.T) {
	sm, err := NewStreamMiner(Params{M: 2, K: 2, Eps: minetest.Eps})
	if err != nil {
		t.Fatal(err)
	}
	pair := []ObjPos{{OID: 1, X: 0}, {OID: 2, X: 1}}
	if err := sm.Observe(3, pair); err != nil {
		t.Fatal(err)
	}
	if err := sm.Observe(3, pair); err == nil {
		t.Fatal("duplicate timestamp accepted")
	}
	if err := sm.Observe(2, pair); err == nil {
		t.Fatal("decreasing timestamp accepted")
	}
	if last, ok := sm.Last(); !ok || last != 3 {
		t.Fatalf("Last() = %d,%v after rejected observes, want 3,true", last, ok)
	}
	// The rejected snapshots must not have perturbed mining.
	if err := sm.Observe(4, pair); err != nil {
		t.Fatal(err)
	}
	got := sm.Flush()
	want := []Convoy{model.NewConvoy(NewObjSet(1, 2), 3, 4)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestStreamMinerGapReportsWithoutFlush pins down the "gaps close all open
// convoys" contract on the live path: after a gap, the closed convoy is
// observable through Closed() immediately — no Flush needed.
func TestStreamMinerGapReportsWithoutFlush(t *testing.T) {
	sm, err := NewStreamMiner(Params{M: 2, K: 2, Eps: minetest.Eps})
	if err != nil {
		t.Fatal(err)
	}
	pair := []ObjPos{{OID: 1, X: 0}, {OID: 2, X: 1}}
	for _, tt := range []int32{0, 1, 2} {
		if err := sm.Observe(tt, pair); err != nil {
			t.Fatal(err)
		}
	}
	if got := sm.Closed(); len(got) != 0 {
		t.Fatalf("nothing should close while alive: %v", got)
	}
	if err := sm.Observe(10, pair); err != nil { // gap: ticks 3..9 missing
		t.Fatal(err)
	}
	got := sm.Closed()
	want := model.NewConvoy(NewObjSet(1, 2), 0, 2)
	if len(got) != 1 || !got[0].Equal(want) {
		t.Fatalf("closed after gap = %v, want [%v]", got, want)
	}
}

// TestStreamMinerDuplicateOIDsMatchBatch pins the resolution rule for
// duplicate object IDs within one tick's snapshot at the Observe boundary:
// duplicates resolve exactly as model.NewDataset resolves them (stable sort
// by OID, last occurrence wins), so streaming raw records with duplicate
// fixes is byte-identical to batch-mining the same records. Before the rule
// was enforced, Observe clustered both fixes as two distinct points — an
// unasserted divergence from the batch path.
func TestStreamMinerDuplicateOIDsMatchBatch(t *testing.T) {
	p := Params{M: 2, K: 2, Eps: minetest.Eps}
	// Object 1 reports twice per tick: a stale fix near object 3 (which
	// would form a spurious pair) and a final fix near object 2. Last wins,
	// so the convoy must be {1,2}.
	var pts []model.Point
	for tt := int32(0); tt < 4; tt++ {
		pts = append(pts,
			model.Point{OID: 1, T: tt, X: 100},   // stale fix, near object 3
			model.Point{OID: 2, T: tt, X: 0.5},   //
			model.Point{OID: 1, T: tt, X: 0},     // final fix, near object 2
			model.Point{OID: 3, T: tt, X: 101.0}, //
		)
	}
	ds := model.NewDataset(pts)

	sm, err := NewStreamMiner(p)
	if err != nil {
		t.Fatal(err)
	}
	for tt := int32(0); tt < 4; tt++ {
		// Feed the raw per-tick records, duplicates included, in arrival
		// order — not the canonicalized Snapshot.
		raw := []ObjPos{
			{OID: 1, X: 100}, {OID: 2, X: 0.5}, {OID: 1, X: 0}, {OID: 3, X: 101.0},
		}
		if err := sm.Observe(tt, raw); err != nil {
			t.Fatal(err)
		}
	}
	got := sm.Flush()
	want, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
	if err != nil {
		t.Fatal(err)
	}
	if !model.ConvoysEqual(got, want.Convoys) {
		t.Fatalf("stream with dup OIDs %v != batch %v", got, want.Convoys)
	}
	if len(got) != 1 || !got[0].Objs.Equal(NewObjSet(1, 2)) {
		t.Fatalf("last fix should win: %v", got)
	}
}

// Randomized version of the duplicate rule: inject duplicate fixes into
// random streams and require stream == batch on the deduped dataset.
func TestStreamMinerDuplicateOIDsRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ds := minetest.Random(seed, 10, 12)
		p := Params{M: 3, K: 4, Eps: minetest.Eps}
		sm, err := NewStreamMiner(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, te := ds.TimeRange()
		for tt := ts; tt <= te; tt++ {
			snap := ds.Snapshot(tt)
			raw := make([]ObjPos, 0, len(snap)+2)
			// A stale fix for two objects arrives first; the canonical
			// position (the snapshot's) arrives later and must win.
			if len(snap) >= 2 {
				raw = append(raw, ObjPos{OID: snap[0].OID, X: snap[0].X + 500, Y: 7})
				raw = append(raw, ObjPos{OID: snap[1].OID, X: snap[1].X - 300, Y: -7})
			}
			raw = append(raw, snap...)
			if err := sm.Observe(tt, raw); err != nil {
				t.Fatal(err)
			}
		}
		got := sm.Flush()
		want, err := MineDataset(ds, p, &Options{Algorithm: PCCD})
		if err != nil {
			t.Fatal(err)
		}
		if !model.ConvoysEqual(got, want.Convoys) {
			t.Fatalf("seed %d: stream with dup fixes %v != batch %v", seed, got, want.Convoys)
		}
	}
}

func TestStreamMinerReset(t *testing.T) {
	sm, err := NewStreamMiner(Params{M: 2, K: 2, Eps: minetest.Eps})
	if err != nil {
		t.Fatal(err)
	}
	pair := []ObjPos{{OID: 1, X: 0}, {OID: 2, X: 1}}
	for _, tt := range []int32{5, 6, 7} {
		if err := sm.Observe(tt, pair); err != nil {
			t.Fatal(err)
		}
	}
	rebuildsBefore := sm.inc.Stats().Rebuilds
	sm.Reset()
	if _, ok := sm.Last(); ok {
		t.Fatal("Last() valid after Reset")
	}
	// Timestamps from before the reset point are acceptable again, and no
	// pre-reset state leaks into the results.
	for _, tt := range []int32{0, 1, 2} {
		if err := sm.Observe(tt, pair); err != nil {
			t.Fatal(err)
		}
	}
	got := sm.Flush()
	want := []Convoy{model.NewConvoy(NewObjSet(1, 2), 0, 2)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("after reset got %v, want %v", got, want)
	}
	// Reset must also tear down the incremental clustering state: the first
	// post-Reset Observe rebuilds it from scratch instead of diffing against
	// the pre-Reset world.
	if rebuilds := sm.inc.Stats().Rebuilds; rebuilds != rebuildsBefore+1 {
		t.Fatalf("incremental state survived Reset: %d rebuilds, want %d", rebuilds, rebuildsBefore+1)
	}
}
